package fleetsync

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/nuwins/cellwheels/internal/atomicio"
)

// ErrDigestMismatch reports bytes that do not hash to the digest they
// were sent under. The store never keeps such bytes: the staging file is
// discarded and the blob stays absent.
var ErrDigestMismatch = errors.New("fleetsync: content does not match its digest")

// Store is a content-addressed artifact store on disk:
//
//	<root>/blobs/<sha256>      committed, immutable, digest-verified
//	<root>/staging/<sha256>    partial uploads, resumable by byte offset
//	<root>/manifests/vNNNNNN.json  one sync manifest per accepted run
//
// A blob is committed only after its staged bytes hash to its name, and
// the final install is an atomic rename — so the blobs directory never
// holds a truncated or corrupt artifact, however uploads fail.
type Store struct {
	root string
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	for _, sub := range []string{"blobs", "staging", "manifests"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("fleetsync: open store: %w", err)
		}
	}
	return &Store{root: dir}, nil
}

// Root reports the store's directory.
func (s *Store) Root() string { return s.root }

func (s *Store) blobPath(digest string) string {
	return filepath.Join(s.root, "blobs", digest)
}

func (s *Store) stagingPath(digest string) string {
	return filepath.Join(s.root, "staging", digest)
}

// Has reports whether the blob is committed.
func (s *Store) Has(digest string) bool {
	if !validDigest(digest) {
		return false
	}
	_, err := os.Stat(s.blobPath(digest))
	return err == nil
}

// Get returns a committed blob's bytes, re-verifying them against the
// digest — disk corruption surfaces as ErrDigestMismatch, not as silent
// bad data folded into a report.
func (s *Store) Get(digest string) ([]byte, error) {
	if !validDigest(digest) {
		return nil, fmt.Errorf("fleetsync: bad digest %q", digest)
	}
	data, err := os.ReadFile(s.blobPath(digest))
	if err != nil {
		return nil, err
	}
	if Digest(data) != digest {
		return nil, fmt.Errorf("%w (stored blob %s)", ErrDigestMismatch, digest)
	}
	return data, nil
}

// Put commits a fully in-hand blob, verifying it first. Committing the
// same blob twice is a no-op (content-addressed stores are idempotent).
func (s *Store) Put(digest string, data []byte) error {
	if !validDigest(digest) {
		return fmt.Errorf("fleetsync: bad digest %q", digest)
	}
	if Digest(data) != digest {
		return ErrDigestMismatch
	}
	if s.Has(digest) {
		return nil
	}
	return atomicio.WriteFileBytes(s.blobPath(digest), 0o644, data)
}

// StagedSize reports how many bytes of a not-yet-committed blob are
// staged; 0 when nothing is.
func (s *Store) StagedSize(digest string) int64 {
	if !validDigest(digest) {
		return 0
	}
	st, err := os.Stat(s.stagingPath(digest))
	if err != nil {
		return 0
	}
	return st.Size()
}

// AppendStaged writes upload bytes at offset, which must equal the
// current staged size — the contract that makes a resumed upload land
// exactly where the interrupted one stopped. It returns how many bytes
// are staged afterwards; r failing mid-copy keeps what arrived (the next
// resume point) and returns the read error.
func (s *Store) AppendStaged(digest string, offset int64, r io.Reader) (int64, error) {
	if !validDigest(digest) {
		return 0, fmt.Errorf("fleetsync: bad digest %q", digest)
	}
	have := s.StagedSize(digest)
	if offset != have {
		return have, fmt.Errorf("fleetsync: staged upload %s is at byte %d, not %d", digest, have, offset)
	}
	f, err := os.OpenFile(s.stagingPath(digest), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return have, err
	}
	n, werr := io.Copy(f, r)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return have + n, werr
}

// CommitStaged verifies the staged bytes against the digest and installs
// them as a committed blob. On mismatch the staging file is removed —
// corrupt uploads never poison the store and the worker restarts from
// byte 0 — and ErrDigestMismatch is returned.
func (s *Store) CommitStaged(digest string) error {
	if !validDigest(digest) {
		return fmt.Errorf("fleetsync: bad digest %q", digest)
	}
	path := s.stagingPath(digest)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	h := sha256.New()
	_, herr := io.Copy(h, f)
	if cerr := f.Close(); herr == nil {
		herr = cerr
	}
	if herr != nil {
		return herr
	}
	if hex.EncodeToString(h.Sum(nil)) != digest {
		s.DiscardStaged(digest)
		return ErrDigestMismatch
	}
	if err := os.Chmod(path, 0o644); err != nil {
		return err
	}
	if err := os.Rename(path, s.blobPath(digest)); err != nil {
		s.DiscardStaged(digest)
		return err
	}
	return nil
}

// DiscardStaged drops a partial upload.
func (s *Store) DiscardStaged(digest string) {
	if validDigest(digest) {
		os.Remove(s.stagingPath(digest))
	}
}

// WriteManifestVersion archives one sync-manifest version and refreshes
// the store's latest-manifest file, both atomically.
func (s *Store) WriteManifestVersion(version int, data []byte) error {
	name := fmt.Sprintf("v%06d.json", version)
	if err := atomicio.WriteFileBytes(filepath.Join(s.root, "manifests", name), 0o644, data); err != nil {
		return err
	}
	return atomicio.WriteFileBytes(filepath.Join(s.root, "sync-manifest.json"), 0o644, data)
}
