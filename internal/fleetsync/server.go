package fleetsync

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/nuwins/cellwheels/internal/fleet"
	"github.com/nuwins/cellwheels/internal/obs"
)

// Collector is the receiving half of a distributed fleet: an HTTP server
// state machine that accepts content-addressed run artifacts from
// workers, verifies each one by digest, validates it against the
// scenario's positional run matrix, and streams it through a
// fleet.Reducer. When every expected run has arrived, Done is closed and
// Result reads out statistics byte-identical to a single-process fleet.
//
// All mutable state is guarded by one mutex; handlers run on net/http's
// goroutines. The reduction itself is slot-addressed, so whatever order
// pushes arrive in — including interleaved workers and retried
// duplicates — cannot show in the output.
type Collector struct {
	scenario string
	store    *Store
	obs      *obs.Recorder

	mu      sync.Mutex
	reducer *fleet.Reducer
	have    []HaveRun // accepted runs in acceptance order; sorted on read
	version int
	// manifestDirty marks a fold whose sync-manifest archive failed; the
	// next announce (usually the worker's retry, landing as a duplicate)
	// retries the persist.
	manifestDirty bool
	done          chan struct{}
}

// NewCollector builds a collector for one scenario. scenario is the
// fingerprint both sides must present (cmd/fleetrun uses the sha256 of
// the scenario file's bytes); reducer expects the scenario's full run
// matrix; store persists artifacts and sync-manifest versions. rec may
// be nil.
func NewCollector(scenario string, reducer *fleet.Reducer, store *Store, rec *obs.Recorder) (*Collector, error) {
	if scenario == "" {
		return nil, errors.New("fleetsync: collector needs a scenario fingerprint")
	}
	if reducer == nil || store == nil {
		return nil, errors.New("fleetsync: collector needs a reducer and a store")
	}
	c := &Collector{
		scenario: scenario,
		store:    store,
		obs:      rec,
		reducer:  reducer,
		done:     make(chan struct{}),
	}
	if reducer.Complete() {
		close(c.done)
	}
	return c, nil
}

// Done is closed once every expected run has been received and folded.
func (c *Collector) Done() <-chan struct{} { return c.done }

// Complete reports whether the reduction has every expected run.
func (c *Collector) Complete() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reducer.Complete()
}

// Result reads the reduction out. Callers normally wait for Done first;
// an early read is a valid partial fold (missing runs' slots are empty).
func (c *Collector) Result() *fleet.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reducer.Result()
}

// Manifest snapshots the collector's sync state.
func (c *Collector) Manifest() SyncManifest {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.manifestLocked()
}

func (c *Collector) manifestLocked() SyncManifest {
	have := make([]HaveRun, len(c.have))
	copy(have, c.have)
	// Acceptance order is arrival order; the manifest's public shape is
	// index order (indexes are unique, so the sort is total).
	sort.SliceStable(have, func(i, j int) bool { return have[i].Index < have[j].Index })
	man := SyncManifest{
		Schema:   SyncSchema,
		Scenario: c.scenario,
		Version:  c.version,
		Total:    c.reducer.Total(),
		Received: c.reducer.Received(),
		Have:     have,
	}
	man.Failed = c.reducer.Result().Manifest.Failed
	return man
}

// Handler returns the collector's HTTP interface, rooted at BasePath.
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(BasePath+"/status", c.handleStatus)
	mux.HandleFunc(BasePath+"/blobs/", c.handleBlob)
	mux.HandleFunc(BasePath+"/runs", c.handleRuns)
	return mux
}

func (c *Collector) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, c.Manifest())
}

func (c *Collector) handleBlob(w http.ResponseWriter, r *http.Request) {
	digest := strings.TrimPrefix(r.URL.Path, BasePath+"/blobs/")
	if !validDigest(digest) {
		http.Error(w, "bad blob digest", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodHead:
		c.blobStatus(w, digest)
	case http.MethodGet:
		c.serveBlob(w, digest)
	case http.MethodPut:
		c.receiveBlob(w, r, digest)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// blobStatus answers "how much of this blob do you have?" — the resume
// query. Committed blobs report their full size and Complete: 1.
func (c *Collector) blobStatus(w http.ResponseWriter, digest string) {
	if data, err := c.store.Get(digest); err == nil {
		w.Header().Set(HeaderReceived, strconv.Itoa(len(data)))
		w.Header().Set(HeaderComplete, "1")
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set(HeaderReceived, strconv.FormatInt(c.store.StagedSize(digest), 10))
	w.WriteHeader(http.StatusNoContent)
}

func (c *Collector) serveBlob(w http.ResponseWriter, digest string) {
	data, err := c.store.Get(digest)
	if err != nil {
		http.Error(w, "blob not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	if _, err := w.Write(data); err != nil {
		return // client went away; nothing to clean up
	}
}

// receiveBlob accepts one slice of an upload. The offset must match the
// staged size (otherwise 409 with the real resume point); when the
// staged file reaches the declared total it is digest-verified and
// committed, or discarded with 422 — a corrupt upload never enters the
// blobs directory.
func (c *Collector) receiveBlob(w http.ResponseWriter, r *http.Request, digest string) {
	if c.store.Has(digest) {
		// Already committed: idempotent success, drop the body.
		w.Header().Set(HeaderComplete, "1")
		w.WriteHeader(http.StatusOK)
		return
	}
	offset, err := strconv.ParseInt(r.Header.Get(HeaderOffset), 10, 64)
	if err != nil || offset < 0 {
		http.Error(w, "bad "+HeaderOffset, http.StatusBadRequest)
		return
	}
	size, err := strconv.ParseInt(r.Header.Get(HeaderSize), 10, 64)
	if err != nil || size <= 0 || offset > size {
		http.Error(w, "bad "+HeaderSize, http.StatusBadRequest)
		return
	}
	if size > MaxBlobBytes {
		http.Error(w, "blob exceeds MaxBlobBytes", http.StatusRequestEntityTooLarge)
		return
	}
	// The declared size is client-controlled; the hard cap must bind the
	// actual body too, or a lying client streams unbounded bytes to disk.
	body := http.MaxBytesReader(w, r.Body, size-offset)
	// Serialize uploads of the same blob; concurrent distinct blobs only
	// contend briefly. (Uploads are small; a per-digest lock would be
	// overkill at fleet-artifact sizes.)
	c.mu.Lock()
	defer c.mu.Unlock()
	staged, err := c.store.AppendStaged(digest, offset, body)
	if err != nil {
		// Offset mismatch (a racing or restarted worker): tell the
		// client where to resume. Mid-body read errors keep what
		// arrived; the client re-HEADs and resumes from there.
		w.Header().Set(HeaderReceived, strconv.FormatInt(c.store.StagedSize(digest), 10))
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if staged < size {
		w.Header().Set(HeaderReceived, strconv.FormatInt(staged, 10))
		w.WriteHeader(http.StatusAccepted)
		return
	}
	if err := c.store.CommitStaged(digest); err != nil {
		if errors.Is(err, ErrDigestMismatch) {
			c.obs.Counter("fleetsync/digest_rejects").Add(1)
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set(HeaderComplete, "1")
	w.WriteHeader(http.StatusCreated)
}

// handleRuns folds an announced, already-uploaded artifact into the
// reduction. Every safety check happens here: scenario fingerprint,
// stored-blob digest, artifact/announce agreement, and the reducer's own
// positional validation (cell, replicate, seed). Announcing a folded run
// again is a duplicate no-op, so workers can retry blindly.
func (c *Collector) handleRuns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req PushRun
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad announce body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Scenario != c.scenario {
		http.Error(w, fmt.Sprintf("scenario mismatch: collector is reducing %s", c.scenario), http.StatusConflict)
		return
	}
	if !validDigest(req.Digest) {
		http.Error(w, "bad blob digest", http.StatusBadRequest)
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reducer.Seen(req.Index) {
		if c.manifestDirty {
			if err := c.persistManifestLocked(); err != nil {
				http.Error(w, "persist sync manifest: "+err.Error(), http.StatusInternalServerError)
				return
			}
			c.manifestDirty = false
		}
		writeJSON(w, http.StatusOK, PushResult{
			Status: PushDuplicate, Received: c.reducer.Received(), Total: c.reducer.Total(),
		})
		return
	}
	data, err := c.store.Get(req.Digest)
	if err != nil {
		if errors.Is(err, ErrDigestMismatch) {
			c.obs.Counter("fleetsync/digest_rejects").Add(1)
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		http.Error(w, "artifact not uploaded: "+req.Digest, http.StatusNotFound)
		return
	}
	art, err := DecodeArtifact(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if art.Record.Index != req.Index {
		http.Error(w, fmt.Sprintf("artifact is run %d, announce says %d", art.Record.Index, req.Index), http.StatusUnprocessableEntity)
		return
	}
	if err := c.reducer.Fold(art.Record, art.Metrics); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	c.version++
	c.have = append(c.have, HaveRun{Index: req.Index, Digest: req.Digest})
	c.obs.Counter("fleetsync/runs_received").Add(1)
	if c.reducer.Complete() {
		close(c.done)
	}
	if err := c.persistManifestLocked(); err != nil {
		// The fold is kept — it cannot be undone — and the archive retry
		// rides on the worker's announce retry, which lands as a
		// duplicate and re-persists.
		c.manifestDirty = true
		http.Error(w, "persist sync manifest: "+err.Error(), http.StatusInternalServerError)
		return
	}
	c.manifestDirty = false
	writeJSON(w, http.StatusOK, PushResult{
		Status: PushAccepted, Received: c.reducer.Received(), Total: c.reducer.Total(),
	})
}

// persistManifestLocked archives the current sync-manifest version.
func (c *Collector) persistManifestLocked() error {
	data, err := json.MarshalIndent(c.manifestLocked(), "", "  ")
	if err != nil {
		return err
	}
	return c.store.WriteManifestVersion(c.version, append(data, '\n'))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(data); err != nil {
		return // client went away
	}
}
