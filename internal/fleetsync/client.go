package fleetsync

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/nuwins/cellwheels/internal/fleet"
	"github.com/nuwins/cellwheels/internal/obs"
)

// Client-side defaults. A whole push is bounded by MaxAttempts requests
// per protocol step, each with its own timeout, with exponential backoff
// plus jitter between attempts — a worker never hangs forever on a dead
// collector and never hammers a briefly hiccuping one.
const (
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxAttempts    = 8
	DefaultBackoffBase    = 100 * time.Millisecond
	DefaultBackoffMax     = 5 * time.Second
)

// PusherConfig parameterizes a worker's sync client.
type PusherConfig struct {
	// BaseURL locates the collector, e.g. "http://10.0.0.7:8080".
	BaseURL string
	// Scenario is the scenario fingerprint the collector was started
	// with; mismatched pushes are rejected before any bytes move.
	Scenario string
	// Transport, when non-nil, replaces the default HTTP transport — the
	// fault-injection seam the flaky-network tests use.
	Transport http.RoundTripper
	// RequestTimeout bounds each individual HTTP request (0 = default).
	RequestTimeout time.Duration
	// MaxAttempts bounds the retries of each protocol step (0 = default).
	MaxAttempts int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// retries (0 = defaults). The jitter on top is deterministic — a
	// splitmix64 hash of (blob, attempt) — so retry schedules need no
	// global randomness.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Obs counts pushes, retries, and resumes. Nil is a no-op.
	Obs *obs.Recorder
	// Sleep replaces time.Sleep between retries in tests. Nil means
	// time.Sleep.
	Sleep func(time.Duration)
}

// Pusher uploads run artifacts to a collector, resumably and
// idempotently: it can be killed at any byte of any request and a fresh
// PushRun of the same run converges without duplicating or corrupting
// anything on the collector.
type Pusher struct {
	cfg    PusherConfig
	client *http.Client
	sleep  func(time.Duration)
}

// NewPusher builds a sync client.
func NewPusher(cfg PusherConfig) (*Pusher, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("fleetsync: pusher needs a collector URL")
	}
	if cfg.Scenario == "" {
		return nil, fmt.Errorf("fleetsync: pusher needs a scenario fingerprint")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	p := &Pusher{
		cfg:    cfg,
		client: &http.Client{Transport: cfg.Transport, Timeout: cfg.RequestTimeout},
		sleep:  cfg.Sleep,
	}
	if p.sleep == nil {
		p.sleep = time.Sleep
	}
	return p, nil
}

// PushRun syncs one finished run to the collector: encode the canonical
// artifact, upload its bytes (resuming any partial previous attempt),
// and announce it for reduction. Safe to call for a run the collector
// already has — the announce lands as a duplicate no-op.
func (p *Pusher) PushRun(rec fleet.RunRecord, m fleet.Metrics) error {
	data, err := EncodeArtifact(Artifact{Record: rec, Metrics: m})
	if err != nil {
		return err
	}
	digest := Digest(data)
	if err := p.uploadBlob(digest, data); err != nil {
		return fmt.Errorf("fleetsync: push run %d: %w", rec.Index, err)
	}
	if err := p.announceRun(rec.Index, digest); err != nil {
		return fmt.Errorf("fleetsync: push run %d: %w", rec.Index, err)
	}
	p.cfg.Obs.Counter("fleetsync/pushes").Add(1)
	return nil
}

// uploadBlob drives the resumable upload loop: learn the collector's
// offset, send the remainder, handle verification. Each failed attempt
// backs off and retries from the freshly queried offset, so bytes that
// made it through a broken connection are never re-sent.
func (p *Pusher) uploadBlob(digest string, data []byte) error {
	var lastErr error
	for attempt := 0; attempt < p.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			p.cfg.Obs.Counter("fleetsync/retries").Add(1)
			p.sleep(backoff(p.cfg.BackoffBase, p.cfg.BackoffMax, digest, attempt))
		}
		offset, complete, err := p.blobStatus(digest)
		if err != nil {
			lastErr = err
			continue
		}
		if complete {
			return nil
		}
		if offset > 0 {
			if offset > int64(len(data)) {
				// A stale staging file from some other content under the
				// same name cannot happen (names are digests); an
				// over-long stage means a collector restart raced us.
				// Start over.
				offset = 0
			} else {
				p.cfg.Obs.Counter("fleetsync/resumes").Add(1)
			}
		}
		done, err := p.putBlob(digest, data, offset)
		if err != nil {
			lastErr = err
			continue
		}
		if done {
			return nil
		}
		// Partial accept (short read server-side): loop resumes from the
		// collector's new offset without burning the backoff clock being
		// wrong about where we are.
		lastErr = fmt.Errorf("upload of %s incomplete", digest)
	}
	return fmt.Errorf("upload %s failed after %d attempts: %w", digest, p.cfg.MaxAttempts, lastErr)
}

// blobStatus HEADs the blob: (staged offset, committed, error).
func (p *Pusher) blobStatus(digest string) (int64, bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, p.blobURL(digest), nil)
	if err != nil {
		return 0, false, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, false, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusNoContent {
		return 0, false, wireError("blob status", resp.StatusCode, readErrBody(resp))
	}
	offset, _ := strconv.ParseInt(resp.Header.Get(HeaderReceived), 10, 64)
	return offset, resp.Header.Get(HeaderComplete) == "1", nil
}

// putBlob uploads data[offset:]; reports whether the blob is now
// committed. A digest rejection (the collector hashed our bytes to
// something else — corruption in transit) discards the staging file
// server-side, so the retry restarts from byte 0.
func (p *Pusher) putBlob(digest string, data []byte, offset int64) (bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, p.blobURL(digest), bytes.NewReader(data[offset:]))
	if err != nil {
		return false, err
	}
	req.Header.Set(HeaderOffset, strconv.FormatInt(offset, 10))
	req.Header.Set(HeaderSize, strconv.Itoa(len(data)))
	req.ContentLength = int64(len(data)) - offset
	resp, err := p.client.Do(req)
	if err != nil {
		return false, err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusCreated, http.StatusOK:
		return true, nil
	case http.StatusAccepted, http.StatusConflict:
		// Accepted: more bytes wanted. Conflict: our offset was stale —
		// both mean "re-query and continue", not failure.
		return false, nil
	default:
		return false, wireError("blob upload", resp.StatusCode, readErrBody(resp))
	}
}

// announceRun POSTs the run for reduction, retrying transient failures.
// Announce is idempotent on the collector, so a retry after a lost
// response cannot double-fold.
func (p *Pusher) announceRun(index int, digest string) error {
	body, err := json.Marshal(PushRun{Scenario: p.cfg.Scenario, Index: index, Digest: digest})
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < p.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			p.cfg.Obs.Counter("fleetsync/retries").Add(1)
			p.sleep(backoff(p.cfg.BackoffBase, p.cfg.BackoffMax, digest+"/announce", attempt))
		}
		ctx, cancel := context.WithTimeout(context.Background(), p.cfg.RequestTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.cfg.BaseURL+BasePath+"/runs", bytes.NewReader(body))
		if err != nil {
			cancel()
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := p.client.Do(req)
		if err != nil {
			cancel()
			lastErr = err
			continue
		}
		var res PushResult
		decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&res)
		drain(resp)
		cancel()
		switch {
		case resp.StatusCode == http.StatusOK && decErr == nil:
			return nil
		case resp.StatusCode == http.StatusConflict, resp.StatusCode == http.StatusUnprocessableEntity:
			// Scenario mismatch or validation failure: retrying the same
			// bytes cannot succeed.
			return wireError("announce", resp.StatusCode, "run rejected by collector")
		default:
			lastErr = wireError("announce", resp.StatusCode, "")
		}
	}
	return fmt.Errorf("announce of run %d failed after %d attempts: %w", index, p.cfg.MaxAttempts, lastErr)
}

// Status pulls the collector's sync manifest — what it holds already —
// so a restarted worker can skip runs that made it through before the
// crash.
func (p *Pusher) Status() (SyncManifest, error) {
	var man SyncManifest
	var lastErr error
	for attempt := 0; attempt < p.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			p.cfg.Obs.Counter("fleetsync/retries").Add(1)
			p.sleep(backoff(p.cfg.BackoffBase, p.cfg.BackoffMax, "status", attempt))
		}
		ctx, cancel := context.WithTimeout(context.Background(), p.cfg.RequestTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.cfg.BaseURL+BasePath+"/status", nil)
		if err != nil {
			cancel()
			return man, err
		}
		resp, err := p.client.Do(req)
		if err != nil {
			cancel()
			lastErr = err
			continue
		}
		decErr := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&man)
		drain(resp)
		cancel()
		if resp.StatusCode == http.StatusOK && decErr == nil {
			if man.Scenario != p.cfg.Scenario {
				return man, fmt.Errorf("fleetsync: collector is reducing scenario %s, not ours", man.Scenario)
			}
			return man, nil
		}
		lastErr = wireError("status", resp.StatusCode, "")
	}
	return man, fmt.Errorf("status failed after %d attempts: %w", p.cfg.MaxAttempts, lastErr)
}

// PullRun downloads and verifies one committed artifact by digest — the
// pull half of the protocol.
func (p *Pusher) PullRun(digest string) (Artifact, error) {
	if !validDigest(digest) {
		return Artifact{}, fmt.Errorf("fleetsync: bad digest %q", digest)
	}
	var lastErr error
	for attempt := 0; attempt < p.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			p.cfg.Obs.Counter("fleetsync/retries").Add(1)
			p.sleep(backoff(p.cfg.BackoffBase, p.cfg.BackoffMax, digest+"/pull", attempt))
		}
		ctx, cancel := context.WithTimeout(context.Background(), p.cfg.RequestTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.blobURL(digest), nil)
		if err != nil {
			cancel()
			return Artifact{}, err
		}
		resp, err := p.client.Do(req)
		if err != nil {
			cancel()
			lastErr = err
			continue
		}
		data, readErr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		drain(resp)
		cancel()
		if resp.StatusCode != http.StatusOK || readErr != nil {
			lastErr = wireError("pull", resp.StatusCode, "")
			continue
		}
		if Digest(data) != digest {
			// The wire mangled it; the collector's copy is verified, so
			// retry.
			lastErr = fmt.Errorf("%w (pulled blob %s)", ErrDigestMismatch, digest)
			continue
		}
		return DecodeArtifact(data)
	}
	return Artifact{}, fmt.Errorf("pull %s failed after %d attempts: %w", digest, p.cfg.MaxAttempts, lastErr)
}

func (p *Pusher) blobURL(digest string) string {
	return strings.TrimSuffix(p.cfg.BaseURL, "/") + BasePath + "/blobs/" + digest
}

// backoff computes the wait before the given retry attempt: exponential
// in the attempt number, capped, with ±25% deterministic jitter keyed by
// (key, attempt) — workers retrying the same outage spread out without
// any shared randomness, and a given retry schedule is reproducible.
func backoff(base, max time.Duration, key string, attempt int) time.Duration {
	d := base << (attempt - 1)
	if d > max || d <= 0 {
		d = max
	}
	h := splitmix64(uint64(attempt)*0x9e3779b97f4a7c15 + hashString(key))
	// frac in [0.75, 1.25)
	frac := 0.75 + float64(h>>11)/float64(1<<53)/2
	return time.Duration(float64(d) * frac)
}

// hashString is FNV-1a, inlined so the hot retry path needs no allocs.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the finalizer used across the repo for positional
// randomness (see internal/ue); here it whitens the jitter key.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// drain discards the remainder of a response body and closes it, keeping
// the connection reusable. Read-only close: the error is unactionable.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
}

func readErrBody(resp *http.Response) string {
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
	if err != nil {
		return resp.Status
	}
	return strings.TrimSpace(string(data))
}
