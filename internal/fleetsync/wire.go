// Package fleetsync distributes a fleet across machines: workers execute
// disjoint subsets of a scenario's sweep cells and push each finished
// run's artifact to a collector over HTTP; the collector verifies every
// artifact by content digest and streams it through the same
// slot-addressed reduction (fleet.Reducer) a single-process fleet uses —
// so the merged report and fleet manifest are byte-identical to running
// the whole scenario in one process, whatever the workers, network
// faults, or arrival order did.
//
// The wire protocol is a minimal content-addressed push/pull, in the
// shape of qri's logbook/logsync exchange:
//
//	GET  {base}/status          → SyncManifest (what the collector has)
//	HEAD {base}/blobs/{digest}  → staged/committed byte counts, for resume
//	PUT  {base}/blobs/{digest}  → upload artifact bytes from an offset
//	GET  {base}/blobs/{digest}  → download a committed artifact (pull)
//	POST {base}/runs            → announce an uploaded run for reduction
//
// Artifacts are immutable and named by the sha256 of their canonical
// bytes, so every transfer is verifiable at the receiver: a blob whose
// bytes do not hash to its name is rejected and discarded, never stored.
// Uploads are resumable — a worker that crashes (or loses the network)
// mid-push re-queries the staged size and continues from there — and
// every announced run is validated against the scenario's positional run
// matrix before it is folded, so a confused worker cannot corrupt the
// reduction. Pushes are idempotent: re-announcing a folded run is a
// no-op, which is what makes blind worker retries safe.
package fleetsync

import "fmt"

// SyncSchema versions the wire protocol and the sync manifest layout.
const SyncSchema = 1

// BasePath prefixes every fleetsync route.
const BasePath = "/fleetsync/v1"

// MaxBlobBytes caps a single uploaded artifact. Run archives are a few
// hundred KiB of gzipped CSV; 256 MiB is two orders of magnitude of
// headroom while still bounding what one lying or broken worker can
// write to the collector's disk.
const MaxBlobBytes = 256 << 20

// Custom headers of the blob upload protocol. All values are decimal
// byte counts.
const (
	// HeaderOffset is the position in the blob a PUT's body starts at;
	// it must equal the collector's currently staged size.
	HeaderOffset = "X-Fleetsync-Offset"
	// HeaderSize is the blob's total size, declared on every PUT so the
	// collector knows when the staging file is complete.
	HeaderSize = "X-Fleetsync-Size"
	// HeaderReceived reports how many bytes the collector holds for the
	// blob (staged, or total when committed) on HEAD and conflict
	// responses — the resume point.
	HeaderReceived = "X-Fleetsync-Received"
	// HeaderComplete is "1" when the blob is committed to the store.
	HeaderComplete = "X-Fleetsync-Complete"
)

// SyncManifest is the collector's versioned statement of what it holds:
// which runs of the scenario's matrix have been received and folded. The
// version increments on every accepted run, and each version is archived
// in the collector's store, so the sync state has an inspectable history.
type SyncManifest struct {
	Schema int `json:"schema"`
	// Scenario fingerprints the scenario document both sides must agree
	// on; pushes for any other scenario are rejected.
	Scenario string `json:"scenario"`
	// Version counts accepted runs, from 0 (empty collector).
	Version int `json:"version"`
	// Total is the size of the expected run matrix; Received of those
	// have been folded, Failed of the received runs failed on their
	// worker.
	Total    int `json:"total"`
	Received int `json:"received"`
	Failed   int `json:"failed"`
	// Have lists the folded runs' full-matrix indexes, ascending, with
	// the digest of each run's artifact — the content-addressed record a
	// worker (or a re-synced collector) pulls runs back out by.
	Have []HaveRun `json:"have"`
}

// HaveRun names one folded run and its artifact digest.
type HaveRun struct {
	Index  int    `json:"index"`
	Digest string `json:"digest"`
}

// PushRun announces one uploaded artifact for reduction.
type PushRun struct {
	Scenario string `json:"scenario"`
	Index    int    `json:"index"`
	Digest   string `json:"digest"`
}

// PushRun response statuses.
const (
	// PushAccepted: the run was verified and folded.
	PushAccepted = "accepted"
	// PushDuplicate: the run was already folded; the announce was a
	// no-op. Idempotent retries land here.
	PushDuplicate = "duplicate"
)

// PushResult is the collector's answer to a PushRun.
type PushResult struct {
	Status   string `json:"status"`
	Received int    `json:"received"`
	Total    int    `json:"total"`
}

// wireError renders protocol failures consistently.
func wireError(op string, code int, detail string) error {
	return fmt.Errorf("fleetsync: %s: HTTP %d: %s", op, code, detail)
}
