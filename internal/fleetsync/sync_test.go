package fleetsync

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/fleet"
	"github.com/nuwins/cellwheels/internal/obs"
)

// The loopback fixture: a 2-cell × 3-replicate scenario with a synthetic
// runner whose metrics exercise the encoding's hard cases (non-terminating
// binary fractions, NaN) plus one deterministic failure — the worker/
// collector split must reproduce all of it byte-for-byte.

const testScenarioFP = "0000000000000000000000000000000000000000000000000000000000000001"

func testAxes() []fleet.Axis {
	return []fleet.Axis{{
		Field:  "mode",
		Values: []json.RawMessage{json.RawMessage(`"a"`), json.RawMessage(`"b"`)},
	}}
}

func testRunner(spec fleet.RunSpec) (fleet.RunResult, error) {
	if spec.Cell.Key == `mode="b"` && spec.Replicate == 2 {
		return fleet.RunResult{}, fmt.Errorf("injected run failure")
	}
	return fleet.RunResult{Metrics: fleet.Metrics{
		"thr":     float64(spec.Seed%100000) / 3.0,
		"rtt":     1.0 / float64(spec.Index+7),
		"skipped": math.NaN(),
	}}, nil
}

func testConfig() fleet.Config {
	return fleet.Config{
		MasterSeed:  77,
		Replicates:  3,
		Sweep:       testAxes(),
		Workers:     2,
		Run:         testRunner,
		MetricOrder: []string{"thr", "rtt"},
	}
}

// expectedBytes runs the scenario in-process and renders the report and
// manifest — the ground truth every distributed variant must match.
func expectedBytes(t *testing.T) (string, []byte) {
	t.Helper()
	res, err := fleet.Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var man bytes.Buffer
	if err := res.Manifest.WriteJSON(&man); err != nil {
		t.Fatal(err)
	}
	return res.Report(), man.Bytes()
}

// startCollector builds a collector over a temp store and serves it.
func startCollector(t *testing.T, rec *obs.Recorder) (*Collector, *httptest.Server) {
	t.Helper()
	red, err := fleet.NewReducer(77, 3, testAxes(), nil, []string{"thr", "rtt"})
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(testScenarioFP, red, store, rec)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(col.Handler())
	t.Cleanup(srv.Close)
	return col, srv
}

// mustPusher builds a client against the test collector with instant
// retry sleeps (the backoff schedule itself is under test elsewhere; unit
// tests should not wait it out).
func mustPusher(t *testing.T, baseURL string, rec *obs.Recorder, opts func(*PusherConfig)) *Pusher {
	t.Helper()
	cfg := PusherConfig{
		BaseURL:  baseURL,
		Scenario: testScenarioFP,
		Obs:      rec,
		Sleep:    func(time.Duration) {},
	}
	if opts != nil {
		opts(&cfg)
	}
	p, err := NewPusher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// pushWorker runs one worker: the scenario restricted to the cells keep
// selects (nil = all), each finished run pushed through p.
func pushWorker(t *testing.T, p *Pusher, keep func(int, fleet.Cell) bool) {
	t.Helper()
	cfg := testConfig()
	cfg.CellFilter = keep
	cfg.OnRun = p.PushRun
	if _, err := fleet.Run(cfg); err != nil {
		t.Fatalf("worker fleet: %v", err)
	}
}

func TestLoopbackTwoWorkersByteIdentical(t *testing.T) {
	wantReport, wantManifest := expectedBytes(t)

	rec := obs.New()
	col, srv := startCollector(t, rec)
	w1 := mustPusher(t, srv.URL, rec, nil)
	w2 := mustPusher(t, srv.URL, rec, nil)

	done := make(chan struct{})
	go func() {
		defer close(done)
		pushWorker(t, w1, func(i int, _ fleet.Cell) bool { return i%2 == 0 })
	}()
	pushWorker(t, w2, func(i int, _ fleet.Cell) bool { return i%2 == 1 })
	<-done

	select {
	case <-col.Done():
	default:
		t.Fatalf("collector incomplete: missing %v", col.Manifest())
	}

	res := col.Result()
	if got := res.Report(); got != wantReport {
		t.Errorf("merged report differs from single-process run:\n--- got ---\n%s--- want ---\n%s", got, wantReport)
	}
	var man bytes.Buffer
	if err := res.Manifest.WriteJSON(&man); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(man.Bytes(), wantManifest) {
		t.Errorf("merged manifest differs from single-process run:\n--- got ---\n%s--- want ---\n%s", man.Bytes(), wantManifest)
	}
	if n := rec.Counter("fleetsync/pushes").Value(); n != 6 {
		t.Errorf("pushes counter = %d, want 6", n)
	}

	man2 := col.Manifest()
	if man2.Total != 6 || man2.Received != 6 || man2.Failed != 1 || man2.Version != 6 {
		t.Errorf("sync manifest = %+v", man2)
	}
	for i, h := range man2.Have {
		if h.Index != i {
			t.Errorf("Have[%d].Index = %d, want dense ascending indexes", i, h.Index)
		}
	}
}

func TestRepushIsIdempotent(t *testing.T) {
	wantReport, _ := expectedBytes(t)

	col, srv := startCollector(t, nil)
	p := mustPusher(t, srv.URL, nil, nil)
	pushWorker(t, p, nil) // whole scenario
	// A crashed-and-restarted worker re-pushes everything it already
	// synced; every push must land as a duplicate no-op.
	pushWorker(t, p, nil)

	man := col.Manifest()
	if man.Received != 6 || man.Version != 6 {
		t.Errorf("after re-push: %+v — duplicates were folded", man)
	}
	if got := col.Result().Report(); got != wantReport {
		t.Errorf("report changed after re-push:\n%s", got)
	}
}

func TestWorkerSkipsRunsCollectorHas(t *testing.T) {
	col, srv := startCollector(t, nil)
	p := mustPusher(t, srv.URL, nil, nil)
	pushWorker(t, p, func(i int, _ fleet.Cell) bool { return i == 0 })

	man, err := p.Status()
	if err != nil {
		t.Fatal(err)
	}
	if man.Received != 3 || len(man.Have) != 3 {
		t.Fatalf("status after one cell = %+v", man)
	}
	// The pull half: every synced run can be fetched back and verifies.
	for _, h := range man.Have {
		art, err := p.PullRun(h.Digest)
		if err != nil {
			t.Fatalf("pull %s: %v", h.Digest, err)
		}
		if art.Record.Index != h.Index {
			t.Errorf("pulled run %d under index %d", art.Record.Index, h.Index)
		}
	}
	pushWorker(t, p, func(i int, _ fleet.Cell) bool { return i == 1 })
	if !col.Complete() {
		t.Error("collector incomplete after both cells")
	}
}

func TestScenarioMismatchRejected(t *testing.T) {
	_, srv := startCollector(t, nil)
	p := mustPusher(t, srv.URL, nil, func(c *PusherConfig) {
		c.Scenario = strings.Repeat("ab", 32)
	})
	spec := fleet.RunSpec{Index: 0}
	err := p.PushRun(fleet.RunRecord{
		Index: spec.Index, Cell: `mode="a"`, Replicate: 0,
		Seed: fleet.RunSeed(77, `mode="a"`, 0), Status: fleet.RunOK,
	}, fleet.Metrics{"thr": 1})
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("push for the wrong scenario: %v, want a 409 rejection", err)
	}
}

func TestBogusRecordRejectedByPositionalValidation(t *testing.T) {
	col, srv := startCollector(t, nil)
	p := mustPusher(t, srv.URL, nil, nil)
	// Right index and cell, wrong seed: a worker that ran some other
	// scenario under our fingerprint must not be folded.
	err := p.PushRun(fleet.RunRecord{
		Index: 0, Cell: `mode="a"`, Replicate: 0, Seed: 424242, Status: fleet.RunOK,
	}, fleet.Metrics{"thr": 1})
	if err == nil {
		t.Fatal("bogus seed accepted")
	}
	if col.Manifest().Received != 0 {
		t.Error("bogus run reached the reduction")
	}
}
