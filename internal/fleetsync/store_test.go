package fleetsync

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nuwins/cellwheels/internal/fleet"
)

func TestArtifactRoundTripIsBitExact(t *testing.T) {
	a := Artifact{
		Record: fleet.RunRecord{
			Index: 3, Cell: `mode="b"`, Replicate: 1, Seed: 12345, Status: fleet.RunOK,
		},
		Metrics: fleet.Metrics{
			"thr":     1.0 / 3.0,
			"rtt":     math.Nextafter(2.5, 3),
			"nan":     math.NaN(),
			"neginf":  math.Inf(-1),
			"negzero": math.Copysign(0, -1),
		},
	}
	data, err := EncodeArtifact(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Record != a.Record {
		t.Errorf("record round trip: %+v != %+v", got.Record, a.Record)
	}
	for name, want := range a.Metrics {
		gv, ok := got.Metrics[name]
		if !ok {
			t.Errorf("metric %q lost", name)
			continue
		}
		if math.Float64bits(gv) != math.Float64bits(want) {
			t.Errorf("metric %q = %x bits, want %x — not bit-exact", name, math.Float64bits(gv), math.Float64bits(want))
		}
	}
	// Canonical: encoding twice (and after a round trip) gives the same
	// bytes, hence the same digest.
	again, err := EncodeArtifact(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("encoding is not canonical:\n%s\n%s", data, again)
	}
}

func TestStorePutGetVerifies(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(`{"hello":"world"}`)
	d := Digest(data)
	if err := s.Put(d, data); err != nil {
		t.Fatal(err)
	}
	if !s.Has(d) {
		t.Fatal("blob missing after Put")
	}
	got, err := s.Get(d)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Wrong digest for the content: never stored.
	if err := s.Put(Digest([]byte("other")), data); !errors.Is(err, ErrDigestMismatch) {
		t.Errorf("Put with wrong digest: %v, want ErrDigestMismatch", err)
	}
	// On-disk corruption surfaces on Get.
	if err := os.WriteFile(filepath.Join(s.Root(), "blobs", d), []byte("corrupted"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(d); !errors.Is(err, ErrDigestMismatch) {
		t.Errorf("Get of corrupted blob: %v, want ErrDigestMismatch", err)
	}
}

func TestStoreResumableStaging(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("0123456789abcdef")
	d := Digest(data)

	n, err := s.AppendStaged(d, 0, bytes.NewReader(data[:7]))
	if err != nil || n != 7 {
		t.Fatalf("first slice: n=%d err=%v", n, err)
	}
	if got := s.StagedSize(d); got != 7 {
		t.Fatalf("StagedSize = %d", got)
	}
	// A resume at the wrong offset is refused and reports the real one.
	if _, err := s.AppendStaged(d, 3, bytes.NewReader(data[3:])); err == nil {
		t.Fatal("offset mismatch accepted")
	}
	n, err = s.AppendStaged(d, 7, bytes.NewReader(data[7:]))
	if err != nil || n != int64(len(data)) {
		t.Fatalf("second slice: n=%d err=%v", n, err)
	}
	if err := s.CommitStaged(d); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(d)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get after staged commit = %q, %v", got, err)
	}
	if s.StagedSize(d) != 0 {
		t.Error("staging file survived its commit")
	}
}

func TestStoreCommitRejectsCorruptStage(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the true content")
	d := Digest(data)
	if _, err := s.AppendStaged(d, 0, strings.NewReader("the fake content")); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitStaged(d); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("commit of corrupt stage: %v, want ErrDigestMismatch", err)
	}
	if s.Has(d) {
		t.Error("corrupt bytes were committed")
	}
	if s.StagedSize(d) != 0 {
		t.Error("corrupt staging file kept; the retry would resume into garbage")
	}
}

func TestValidDigest(t *testing.T) {
	good := Digest([]byte("x"))
	if !validDigest(good) {
		t.Errorf("real digest rejected: %s", good)
	}
	for _, bad := range []string{"", "abc", strings.Repeat("g", 64), "../../etc/passwd", strings.Repeat("A", 64)} {
		if validDigest(bad) {
			t.Errorf("bad digest accepted: %q", bad)
		}
	}
}
