package fleetsync

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"github.com/nuwins/cellwheels/internal/fleet"
)

// Artifact is one run's transferable record: the manifest row plus the
// flat metric map the fleet reduction folds. It is the unit of
// content-addressing — a run's identity on the wire is the sha256 of its
// canonical encoding.
type Artifact struct {
	Record  fleet.RunRecord
	Metrics fleet.Metrics
}

// artifactSchema versions the canonical encoding.
const artifactSchema = 1

// wireArtifact is the serialized layout. Metrics are a sorted list of
// (name, value-string) pairs rather than a JSON number map for two
// reasons: the order is canonical by construction (equal artifacts always
// produce equal bytes, hence equal digests), and the values survive the
// trip bit-exactly — strconv's shortest round-trip formatting represents
// every float64 including NaN, which JSON numbers cannot carry at all and
// a campaign's skipped-app metrics legitimately produce.
type wireArtifact struct {
	Schema  int             `json:"schema"`
	Record  fleet.RunRecord `json:"record"`
	Metrics []wireMetric    `json:"metrics"`
}

type wireMetric struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// EncodeArtifact renders a's canonical bytes. Encoding is deterministic:
// the same record and metrics always produce the same bytes and therefore
// the same digest, on every worker.
func EncodeArtifact(a Artifact) ([]byte, error) {
	names := make([]string, 0, len(a.Metrics))
	for name := range a.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	w := wireArtifact{Schema: artifactSchema, Record: a.Record, Metrics: make([]wireMetric, len(names))}
	for i, name := range names {
		w.Metrics[i] = wireMetric{
			Name:  name,
			Value: strconv.FormatFloat(a.Metrics[name], 'g', -1, 64),
		}
	}
	data, err := json.Marshal(w)
	if err != nil {
		return nil, fmt.Errorf("fleetsync: encode artifact: %w", err)
	}
	return data, nil
}

// DecodeArtifact parses canonical artifact bytes. Every metric value
// round-trips to the exact float64 the worker measured — the property the
// merged report's byte-identity rests on.
func DecodeArtifact(data []byte) (Artifact, error) {
	var w wireArtifact
	if err := json.Unmarshal(data, &w); err != nil {
		return Artifact{}, fmt.Errorf("fleetsync: decode artifact: %w", err)
	}
	if w.Schema != artifactSchema {
		return Artifact{}, fmt.Errorf("fleetsync: artifact schema %d, want %d", w.Schema, artifactSchema)
	}
	a := Artifact{Record: w.Record}
	if len(w.Metrics) > 0 {
		a.Metrics = make(fleet.Metrics, len(w.Metrics))
		for _, m := range w.Metrics {
			v, err := strconv.ParseFloat(m.Value, 64)
			if err != nil {
				return Artifact{}, fmt.Errorf("fleetsync: artifact metric %q: bad value %q: %w", m.Name, m.Value, err)
			}
			if _, dup := a.Metrics[m.Name]; dup {
				return Artifact{}, fmt.Errorf("fleetsync: artifact metric %q repeated", m.Name)
			}
			a.Metrics[m.Name] = v
		}
	}
	return a, nil
}

// Digest names a blob: the lowercase hex sha256 of its bytes.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// validDigest reports whether s is a well-formed blob name. Digests are
// used as file names under the store root, so anything else — including
// path traversal — is rejected before it reaches the filesystem.
func validDigest(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
