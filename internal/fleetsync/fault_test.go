package fleetsync

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"github.com/nuwins/cellwheels/internal/fleet"
	"github.com/nuwins/cellwheels/internal/obs"
)

// Fault injection: the push protocol's whole point is that a flaky
// network — dropped connections, truncated uploads, corrupted bytes —
// cannot change the merged output. These tests wrap the client's
// Transport seam with a deterministic fault plan and demand the same
// byte-identical report the clean loopback test pins.

type faultKind int

const (
	faultNone     faultKind = iota
	faultDrop               // fail the request before it leaves
	faultTruncate           // deliver only the first half of the body
	faultCorrupt            // flip one byte of the body in transit
)

// faultingTransport consults a plan for every request, in order. The
// plan runs under the transport's lock, so stateful plans (counting
// PUTs, say) need no synchronization of their own.
type faultingTransport struct {
	base http.RoundTripper
	plan func(n int, req *http.Request) faultKind

	mu sync.Mutex
	n  int
}

func (ft *faultingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ft.mu.Lock()
	ft.n++
	n := ft.n
	kind := ft.plan(n, req)
	ft.mu.Unlock()
	switch kind {
	case faultDrop:
		if req.Body != nil {
			_ = req.Body.Close()
		}
		return nil, fmt.Errorf("injected: connection dropped before request %d", n)
	case faultTruncate:
		return ft.base.RoundTrip(rewriteBody(req, func(b []byte) []byte {
			return b[:len(b)/2]
		}))
	case faultCorrupt:
		return ft.base.RoundTrip(rewriteBody(req, func(b []byte) []byte {
			c := bytes.Clone(b)
			c[len(c)/2] ^= 0x40
			return c
		}))
	}
	return ft.base.RoundTrip(req)
}

// rewriteBody rebuilds the request around a transformed body. The
// original headers — including the declared upload size — are kept, so
// a truncated body looks exactly like a connection that died mid-PUT.
func rewriteBody(req *http.Request, f func([]byte) []byte) *http.Request {
	data, err := io.ReadAll(req.Body)
	_ = req.Body.Close()
	if err != nil {
		panic("fault_test: reading request body: " + err.Error())
	}
	out := f(data)
	r2 := req.Clone(req.Context())
	r2.Body = io.NopCloser(bytes.NewReader(out))
	r2.ContentLength = int64(len(out))
	return r2
}

func checkByteIdentical(t *testing.T, col *Collector) {
	t.Helper()
	wantReport, wantManifest := expectedBytes(t)
	res := col.Result()
	if got := res.Report(); got != wantReport {
		t.Errorf("report under faults differs from single-process run:\n--- got ---\n%s--- want ---\n%s", got, wantReport)
	}
	var man bytes.Buffer
	if err := res.Manifest.WriteJSON(&man); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(man.Bytes(), wantManifest) {
		t.Errorf("manifest under faults differs from single-process run:\n--- got ---\n%s--- want ---\n%s", man.Bytes(), wantManifest)
	}
}

func TestFlakyNetworkStillConvergesByteIdentical(t *testing.T) {
	rec := obs.New()
	col, srv := startCollector(t, rec)

	// The plan: three dropped requests at fixed ordinals, plus the first
	// and fourth PUTs truncated to half their bytes. Single worker, so
	// the request stream — and hence the whole fault trace — is
	// deterministic.
	drops := map[int]bool{1: true, 10: true, 19: true}
	puts := 0
	ft := &faultingTransport{
		base: http.DefaultTransport,
		plan: func(n int, req *http.Request) faultKind {
			if drops[n] {
				return faultDrop
			}
			if req.Method == http.MethodPut {
				puts++
				if puts == 1 || puts == 4 {
					return faultTruncate
				}
			}
			return faultNone
		},
	}
	p := mustPusher(t, srv.URL, rec, func(c *PusherConfig) { c.Transport = ft })
	pushWorker(t, p, nil)

	if !col.Complete() {
		t.Fatalf("collector incomplete under faults: missing %+v", col.Manifest())
	}
	checkByteIdentical(t, col)
	if n := rec.Counter("fleetsync/pushes").Value(); n != 6 {
		t.Errorf("pushes = %d, want 6", n)
	}
	if n := rec.Counter("fleetsync/retries").Value(); n < 3 {
		t.Errorf("retries = %d, want at least one per dropped request", n)
	}
	if n := rec.Counter("fleetsync/resumes").Value(); n < 2 {
		t.Errorf("resumes = %d, want one per truncated upload", n)
	}
}

func TestCorruptedUploadRetriedCleanlyAfterDigestReject(t *testing.T) {
	rec := obs.New()
	col, srv := startCollector(t, rec)

	puts := 0
	ft := &faultingTransport{
		base: http.DefaultTransport,
		plan: func(n int, req *http.Request) faultKind {
			if req.Method == http.MethodPut {
				puts++
				if puts == 1 {
					return faultCorrupt
				}
			}
			return faultNone
		},
	}
	p := mustPusher(t, srv.URL, rec, func(c *PusherConfig) { c.Transport = ft })
	pushWorker(t, p, nil)

	// The collector hashed the mangled bytes, rejected them, discarded
	// the stage, and the retry's clean upload went through — so the run
	// set still converges exactly.
	if !col.Complete() {
		t.Fatalf("collector incomplete after corrupt-then-clean upload: %+v", col.Manifest())
	}
	checkByteIdentical(t, col)
	if n := rec.Counter("fleetsync/digest_rejects").Value(); n != 1 {
		t.Errorf("digest_rejects = %d, want exactly the one corrupted upload", n)
	}
}

func TestPersistentCorruptionNeverPoisonsStore(t *testing.T) {
	rec := obs.New()
	col, srv := startCollector(t, rec)

	ft := &faultingTransport{
		base: http.DefaultTransport,
		plan: func(n int, req *http.Request) faultKind {
			if req.Method == http.MethodPut {
				return faultCorrupt
			}
			return faultNone
		},
	}
	p := mustPusher(t, srv.URL, rec, func(c *PusherConfig) {
		c.Transport = ft
		c.MaxAttempts = 3
	})

	rec0 := fleet.RunRecord{
		Index: 0, Cell: `mode="a"`, Replicate: 0,
		Seed: fleet.RunSeed(77, `mode="a"`, 0), Status: fleet.RunOK,
	}
	m0 := fleet.Metrics{"thr": 1, "rtt": 2}
	err := p.PushRun(rec0, m0)
	if err == nil {
		t.Fatal("push through a permanently corrupting wire succeeded")
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("push error does not report its retry budget: %v", err)
	}

	// Every attempt staged corrupt bytes and every commit rejected them.
	if n := rec.Counter("fleetsync/digest_rejects").Value(); n != 3 {
		t.Errorf("digest_rejects = %d, want one per attempt", n)
	}
	if got := col.Manifest().Received; got != 0 {
		t.Errorf("collector folded %d runs from a corrupting wire", got)
	}
	// Nothing under the artifact's true digest is servable: the store
	// was never poisoned with the mangled bytes.
	data, err := EncodeArtifact(Artifact{Record: rec0, Metrics: m0})
	if err != nil {
		t.Fatal(err)
	}
	clean := mustPusher(t, srv.URL, nil, func(c *PusherConfig) { c.MaxAttempts = 2 })
	if _, err := clean.PullRun(Digest(data)); err == nil {
		t.Error("corrupted upload left a servable blob in the store")
	}
}
