// Command drivetest runs a cellwheels measurement campaign and writes the
// consolidated dataset, mirroring the paper's data-collection phase.
//
// Usage:
//
//	drivetest -seed 42 -out dataset.json [-limit-km 500] [-csv dir]
//	          [-skip-apps] [-skip-static] [-skip-passive]
//	          [-disable-edge] [-disable-policy] [-workers N]
//	          [-crowd N] [-crowd-samples M] [-load-model standin|demand]
//	          [-progress] [-metrics manifest.json] [-pprof cpu.out]
//
// The full 5,711 km campaign takes on the order of a minute; use
// -limit-km for quick runs. -crowd attaches N background UEs per operator
// (the metro-scale crowd); -load-model demand makes the handsets see the
// crowd's aggregate sector demand instead of the per-UE stand-in.
// -progress prints a periodic status line to stderr, -metrics writes a
// machine-readable run manifest, and -pprof captures a CPU profile of the
// whole run. All three are side channels: the dataset is byte-identical
// with or without them.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"time"

	"github.com/nuwins/cellwheels"
	"github.com/nuwins/cellwheels/internal/atomicio"
	"github.com/nuwins/cellwheels/internal/obs"
)

func main() {
	var (
		seed          = flag.Int64("seed", 1, "campaign seed (same seed, same dataset)")
		out           = flag.String("out", "dataset.json", "output dataset path")
		csvDir        = flag.String("csv", "", "also write per-table CSVs into this directory")
		rawDir        = flag.String("raw", "", "also archive the raw XCAL captures (.drm) into this directory")
		geoDir        = flag.String("geojson", "", "also write route + coverage GeoJSON into this directory")
		limitKm       = flag.Float64("limit-km", 0, "truncate the drive after this many km (0 = full route)")
		skipApps      = flag.Bool("skip-apps", false, "skip the four application workloads")
		skipStatic    = flag.Bool("skip-static", false, "skip per-city static baselines")
		skipPassive   = flag.Bool("skip-passive", false, "skip the passive handover loggers")
		disableEdge   = flag.Bool("disable-edge", false, "remove Wavelength edge servers (ablation)")
		disablePolicy = flag.Bool("disable-policy", false, "always serve the best technology (ablation)")
		workers       = flag.Int("workers", 0, "concurrent operator lanes (0 = GOMAXPROCS); output is identical for any value")
		crowd         = flag.Int("crowd", 0, "background UEs per operator (0 = no crowd)")
		crowdSamples  = flag.Int("crowd-samples", 0, "crowd UEs running speedtest measurements (0 = 120 when a crowd is enabled)")
		loadModel     = flag.String("load-model", "", "sector-load backend the handsets see: standin (default) or demand (crowd-driven)")
		progress      = flag.Bool("progress", false, "print a periodic progress line (odometer, tick rate, ETA) to stderr")
		metricsPath   = flag.String("metrics", "", "write a machine-readable run manifest (JSON) to this path")
		pprofPath     = flag.String("pprof", "", "write a CPU profile of the run to this path")
	)
	flag.Parse()

	// The recorder is the only wall clock this command touches: run
	// timing, progress reporting, and the manifest all read it, and none
	// of it feeds the simulation.
	rec := obs.New()
	if *progress {
		rec.EnableProgress(os.Stderr, time.Second)
	}

	if *pprofPath != "" {
		f, err := os.Create(*pprofPath)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "drivetest: pprof:", err)
			}
		}()
	}

	cfg := cellwheels.Config{
		Seed:          *seed,
		LimitKm:       *limitKm,
		SkipApps:      *skipApps,
		SkipStatic:    *skipStatic,
		SkipPassive:   *skipPassive,
		DisableEdge:   *disableEdge,
		DisablePolicy: *disablePolicy,
		Workers:       *workers,
		CrowdSize:     *crowd,
		CrowdSamples:  *crowdSamples,
		LoadModel:     *loadModel,
		Obs:           rec,
	}
	var study *cellwheels.Study
	var err error
	if *rawDir != "" {
		study, err = cellwheels.RunArchivingRaw(cfg, *rawDir)
	} else {
		study, err = cellwheels.Run(cfg)
	}
	if err != nil {
		fatal(err)
	}
	if *rawDir != "" {
		fmt.Fprintf(os.Stderr, "raw captures archived to %s/\n", *rawDir)
	}
	//lint:allow timetaint — stderr banner timing only; never reaches the dataset
	fmt.Fprintf(os.Stderr, "campaign finished in %v\n", rec.Elapsed().Round(time.Millisecond))
	fmt.Fprint(os.Stderr, study.Summary())

	if err := writeDataset(*out, study); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dataset written to %s\n", *out)

	if *geoDir != "" {
		if err := os.MkdirAll(*geoDir, 0o755); err != nil {
			fatal(err)
		}
		if err := study.WriteCoverageGeoJSON(*geoDir); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "GeoJSON written to %s/\n", *geoDir)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
		if err := study.WriteCSV(*csvDir); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "CSV tables written to %s/\n", *csvDir)
	}

	if *metricsPath != "" {
		rec.SetLabel("dataset", *out)
		if err := writeManifest(*metricsPath, rec); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "run manifest written to %s\n", *metricsPath)
	}
}

// writeDataset serializes the dataset atomically via WriteJSONFile —
// a failed write never leaves a truncated dataset behind.
func writeDataset(path string, study *cellwheels.Study) error {
	return study.WriteJSONFile(path)
}

// writeManifest writes the run manifest through the shared atomic
// writer, matching every other artifact in the repo. The parent
// directory is created — a -metrics path in a fresh results tree
// should not fail a campaign that already ran.
func writeManifest(path string, rec *obs.Recorder) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("create metrics directory %s: %w", dir, err)
		}
	}
	return atomicio.WriteFile(path, 0o644, rec.WriteManifest)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drivetest:", err)
	os.Exit(1)
}
