// Command drivetest runs a cellwheels measurement campaign and writes the
// consolidated dataset, mirroring the paper's data-collection phase.
//
// Usage:
//
//	drivetest -seed 42 -out dataset.json [-limit-km 500] [-csv dir]
//	          [-skip-apps] [-skip-static] [-skip-passive]
//	          [-disable-edge] [-disable-policy] [-workers N]
//
// The full 5,711 km campaign takes on the order of a minute; use
// -limit-km for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/nuwins/cellwheels"
)

func main() {
	var (
		seed          = flag.Int64("seed", 1, "campaign seed (same seed, same dataset)")
		out           = flag.String("out", "dataset.json", "output dataset path")
		csvDir        = flag.String("csv", "", "also write per-table CSVs into this directory")
		rawDir        = flag.String("raw", "", "also archive the raw XCAL captures (.drm) into this directory")
		geoDir        = flag.String("geojson", "", "also write route + coverage GeoJSON into this directory")
		limitKm       = flag.Float64("limit-km", 0, "truncate the drive after this many km (0 = full route)")
		skipApps      = flag.Bool("skip-apps", false, "skip the four application workloads")
		skipStatic    = flag.Bool("skip-static", false, "skip per-city static baselines")
		skipPassive   = flag.Bool("skip-passive", false, "skip the passive handover loggers")
		disableEdge   = flag.Bool("disable-edge", false, "remove Wavelength edge servers (ablation)")
		disablePolicy = flag.Bool("disable-policy", false, "always serve the best technology (ablation)")
		workers       = flag.Int("workers", 0, "concurrent operator lanes (0 = GOMAXPROCS); output is identical for any value")
	)
	flag.Parse()

	cfg := cellwheels.Config{
		Seed:          *seed,
		LimitKm:       *limitKm,
		SkipApps:      *skipApps,
		SkipStatic:    *skipStatic,
		SkipPassive:   *skipPassive,
		DisableEdge:   *disableEdge,
		DisablePolicy: *disablePolicy,
		Workers:       *workers,
	}
	start := time.Now() //lint:allow nondet — times the run itself for the stderr banner; never feeds the simulation
	var study *cellwheels.Study
	var err error
	if *rawDir != "" {
		study, err = cellwheels.RunArchivingRaw(cfg, *rawDir)
	} else {
		study, err = cellwheels.Run(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "drivetest:", err)
		os.Exit(1)
	}
	if *rawDir != "" {
		fmt.Fprintf(os.Stderr, "raw captures archived to %s/\n", *rawDir)
	}
	//lint:allow nondet — times the run itself for the stderr banner; never feeds the simulation
	fmt.Fprintf(os.Stderr, "campaign finished in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Fprint(os.Stderr, study.Summary())

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "drivetest:", err)
		os.Exit(1)
	}
	err = study.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "drivetest:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dataset written to %s\n", *out)

	if *geoDir != "" {
		if err := study.WriteCoverageGeoJSON(*geoDir); err != nil {
			fmt.Fprintln(os.Stderr, "drivetest:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "GeoJSON written to %s/\n", *geoDir)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "drivetest:", err)
			os.Exit(1)
		}
		if err := study.WriteCSV(*csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "drivetest:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "CSV tables written to %s/\n", *csvDir)
	}
}
