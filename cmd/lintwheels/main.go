// Command lintwheels runs the repository's determinism & correctness
// linter (internal/lint) over the module: a stdlib-only static-analysis
// pass — per-package rules plus an interprocedural call-graph/dataflow
// engine — that keeps campaigns a pure function of (Config, seed).
//
// Usage:
//
//	lintwheels ./...                        # lint every package in the module
//	lintwheels ./internal/...               # lint a subtree (interprocedural
//	                                        # rules see only the subtree)
//	lintwheels -rules list                  # list the rule suite, sorted, and exit
//	lintwheels -rules hotalloc,hotdefer,hotbox ./...   # run a subset of rules
//	lintwheels -format sarif -o lint.sarif ./...
//	lintwheels -baseline lint-baseline.json ./...            # check mode
//	lintwheels -baseline lint-baseline.json -write-baseline ./...
//
// Diagnostics print as "file:line:col: [rule] message", sorted by file
// and position; -format json and -format sarif emit machine-readable
// reports with the same ordering. Output is byte-identical for every
// -workers value. The exit status is non-zero when anything is found,
// including stale baseline entries. Intentional violations are silenced
// at the call site with "//lint:allow <rule>[,<rule>] — reason".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"github.com/nuwins/cellwheels/internal/atomicio"
	"github.com/nuwins/cellwheels/internal/lint"
)

func main() {
	var (
		chdir     = flag.String("C", "", "change to this directory before linting")
		ruleSpec  = flag.String("rules", "", "comma-separated rule names to run (default all); \"list\" prints the suite and exits")
		format    = flag.String("format", "text", "output format: text, json, or sarif")
		outPath   = flag.String("o", "", "write the report to this file instead of stdout")
		baseline  = flag.String("baseline", "", "baseline file: suppress known findings, fail on stale entries")
		writeBase = flag.Bool("write-baseline", false, "rewrite the -baseline file from current findings and exit")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "packages checked concurrently (output is identical for any value)")
	)
	flag.Parse()

	if *ruleSpec == "list" {
		rules := lint.AllRules()
		sort.Slice(rules, func(i, j int) bool { return rules[i].Name() < rules[j].Name() })
		for _, r := range rules {
			fmt.Printf("%-14s %s\n", r.Name(), r.Doc())
		}
		return
	}
	rules, err := selectRules(*ruleSpec)
	if err != nil {
		fail(err)
	}

	dir := *chdir
	if dir == "" {
		dir = "."
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		fail(err)
	}
	pkgs, err := lint.LoadModule(root, flag.Args()...)
	if err != nil {
		fail(err)
	}
	diags := lint.RunWorkers(pkgs, rules, *workers)
	// Module-relative paths keep every output stable across checkouts.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}

	var stale []lint.BaselineEntry
	if *baseline != "" {
		if *writeBase {
			if err := lint.WriteBaseline(*baseline, lint.NewBaseline(diags)); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "lintwheels: wrote %d baseline entr%s to %s\n",
				len(diags), plural(len(diags), "y", "ies"), *baseline)
			return
		}
		b, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fail(err)
		}
		diags, stale = lint.ApplyBaseline(b, diags)
	}

	emit := func(out io.Writer) error {
		switch *format {
		case "text":
			for _, d := range diags {
				if _, err := fmt.Fprintln(out, d); err != nil {
					return err
				}
			}
			return nil
		case "json":
			rep, err := lint.JSONReport(diags)
			if err != nil {
				return err
			}
			_, err = out.Write(rep)
			return err
		case "sarif":
			rep, err := lint.SARIFReport(diags, rules)
			if err != nil {
				return err
			}
			_, err = out.Write(rep)
			return err
		default:
			return fmt.Errorf("unknown -format %q (want text, json, or sarif)", *format)
		}
	}
	if *outPath != "" {
		// Atomic install: a failed render or write never leaves a
		// truncated report where CI expects a complete artifact.
		if err := atomicio.WriteFile(*outPath, 0o644, emit); err != nil {
			fail(err)
		}
	} else if err := emit(os.Stdout); err != nil {
		fail(err)
	}

	bad := false
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lintwheels: %d finding(s)\n", len(diags))
		bad = true
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "lintwheels: stale baseline entry: %s [%s] %s (count %d no longer fires)\n", e.File, e.Rule, e.Msg, e.Count)
		bad = true
	}
	if len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "lintwheels: baseline %s is stale; regenerate with -write-baseline\n", *baseline)
	}
	if bad {
		os.Exit(1)
	}
}

// selectRules resolves the -rules flag: empty means the full suite, and
// a comma-separated list picks named rules, preserving suite order so the
// output (and any SARIF rule index) stays stable regardless of how the
// user spells the list.
func selectRules(spec string) ([]lint.Rule, error) {
	all := lint.AllRules()
	if spec == "" {
		return all, nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		want[name] = true
	}
	var rules []lint.Rule
	for _, r := range all {
		if want[r.Name()] {
			rules = append(rules, r)
			delete(want, r.Name())
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for name := range want {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown rule(s) %s; run -rules list for the suite", strings.Join(unknown, ", "))
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("-rules %q selects no rules; run -rules list for the suite", spec)
	}
	return rules, nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lintwheels:", err)
	os.Exit(2)
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
