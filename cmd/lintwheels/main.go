// Command lintwheels runs the repository's determinism & correctness
// linter (internal/lint) over the module: a stdlib-only static-analysis
// pass that keeps campaigns a pure function of (Config, seed).
//
// Usage:
//
//	lintwheels ./...              # lint every package in the module
//	lintwheels ./internal/...     # lint a subtree
//	lintwheels -rules             # list the rule suite and exit
//
// Diagnostics print as "file:line:col: [rule] message", sorted by file
// and position; the exit status is non-zero when anything is found.
// Intentional violations are silenced at the call site with
// "//lint:allow <rule> — reason".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/nuwins/cellwheels/internal/lint"
)

func main() {
	var (
		chdir     = flag.String("C", "", "change to this directory before linting")
		listRules = flag.Bool("rules", false, "list rules and exit")
	)
	flag.Parse()

	if *listRules {
		for _, r := range lint.AllRules() {
			fmt.Printf("%-14s %s\n", r.Name(), r.Doc())
		}
		return
	}

	dir := *chdir
	if dir == "" {
		dir = "."
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintwheels:", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadModule(root, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintwheels:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, lint.AllRules())
	for _, d := range diags {
		// Print module-relative paths so output is stable across checkouts.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lintwheels: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
