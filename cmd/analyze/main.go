// Command analyze regenerates the paper's tables and figures from a
// dataset written by drivetest.
//
// Usage:
//
//	analyze -in dataset.json              # full report, paper order
//	analyze -in dataset.json -section fig2
//	analyze -list                         # available section ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/nuwins/cellwheels"
)

func main() {
	var (
		in      = flag.String("in", "dataset.json", "dataset path (from drivetest)")
		section = flag.String("section", "", "one section id (default: full report)")
		list    = flag.Bool("list", false, "list section ids and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(cellwheels.SectionIDs(), "\n"))
		return
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	defer f.Close() //lint:allow uncheckederr — the dataset is only read; a close failure cannot corrupt it
	study, err := cellwheels.Load(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}

	if *section == "" {
		fmt.Print(study.Report())
		return
	}
	out, err := study.Section(*section)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
