// Command wheelsreport runs a campaign and prints the full paper-style
// report in one shot — the tool EXPERIMENTS.md's numbers come from.
//
// Usage:
//
//	wheelsreport -seed 1                 # full 5,711 km campaign
//	wheelsreport -seed 1 -limit-km 800   # quicker partial run
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/nuwins/cellwheels"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "campaign seed")
		limitKm = flag.Float64("limit-km", 0, "truncate the drive (0 = full route)")
		crowd   = flag.Int("crowd", 0, "also simulate this many Ookla-style static crowd samples per carrier (measured Table 3)")
	)
	flag.Parse()

	start := time.Now() //lint:allow nondet — times the run itself for the stderr banner; never feeds the simulation
	study, err := cellwheels.Run(cellwheels.Config{Seed: *seed, LimitKm: *limitKm})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wheelsreport:", err)
		os.Exit(1)
	}
	//lint:allow nondet — times the run itself for the stderr banner; never feeds the simulation
	fmt.Fprintf(os.Stderr, "campaign finished in %v\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Print(study.Summary())
	fmt.Println()
	fmt.Print(study.Report())
	if *crowd > 0 {
		fmt.Println(study.MeasuredOokla(*crowd))
	}
}
