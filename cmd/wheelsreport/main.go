// Command wheelsreport runs a campaign and prints the full paper-style
// report in one shot — the tool EXPERIMENTS.md's numbers come from.
//
// Usage:
//
//	wheelsreport -seed 1                 # full 5,711 km campaign
//	wheelsreport -seed 1 -limit-km 800   # quicker partial run
//	wheelsreport -seed 1 -replicates 5   # headline tables with variance
//
// With -replicates N (N > 1) the fleet engine runs N seeds forked from
// -seed and the headline tables print as "median [p25–p75]" across the
// replicates instead of single-seed point values; the full per-figure
// report remains a single-seed view and is skipped in this mode.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/nuwins/cellwheels"
	"github.com/nuwins/cellwheels/internal/obs"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "campaign seed (fleet master seed with -replicates)")
		limitKm    = flag.Float64("limit-km", 0, "truncate the drive (0 = full route)")
		crowd      = flag.Int("crowd", 0, "also simulate this many Ookla-style static crowd samples per carrier (measured Table 3)")
		crowdSize  = flag.Int("crowd-size", 0, "attach this many background UEs per carrier; the measured Table 3 then comes from in-run crowd flows")
		loadModel  = flag.String("load-model", "", "sector-load backend the handsets see: standin (default) or demand (crowd-driven)")
		replicates = flag.Int("replicates", 1, "run this many fleet replicates and print headline tables as median [p25–p75]")
		workers    = flag.Int("workers", 0, "concurrent replicate runs with -replicates (0 = GOMAXPROCS); output is identical for any value")
	)
	flag.Parse()

	// The recorder is the only wall clock this command touches; it times
	// the run for the stderr banner and never feeds the simulation.
	rec := obs.New()

	if *replicates > 1 {
		res, err := cellwheels.RunFleet(cellwheels.FleetConfig{
			MasterSeed: *seed,
			Replicates: *replicates,
			Base:       cellwheels.Config{LimitKm: *limitKm},
			Workers:    *workers,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "wheelsreport:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fleet of %d replicates finished in %v\n\n",
			//lint:allow timetaint — stderr banner timing only; never reaches the report
			res.Runs(), rec.Elapsed().Round(time.Millisecond))
		fmt.Print(res.Report())
		if res.Failed() > 0 {
			fmt.Fprintf(os.Stderr, "wheelsreport: %d of %d replicates failed\n", res.Failed(), res.Runs())
			os.Exit(1)
		}
		return
	}

	study, err := cellwheels.Run(cellwheels.Config{
		Seed:         *seed,
		LimitKm:      *limitKm,
		CrowdSize:    *crowdSize,
		CrowdSamples: *crowd,
		LoadModel:    *loadModel,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wheelsreport:", err)
		os.Exit(1)
	}
	//lint:allow timetaint — stderr banner timing only; never reaches the report
	fmt.Fprintf(os.Stderr, "campaign finished in %v\n\n", rec.Elapsed().Round(time.Millisecond))
	fmt.Print(study.Summary())
	fmt.Println()
	fmt.Print(study.Report())
	if *crowd > 0 || *crowdSize > 0 {
		fmt.Println(study.MeasuredOokla(*crowd))
	}
}
