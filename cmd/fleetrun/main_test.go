package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nuwins/cellwheels/internal/fleet"
)

// smallScenario is a 3-run (1 cell × 3 replicates) fleet small enough
// for CLI tests.
const smallScenario = `{
  "master_seed": 5,
  "replicates": 3,
  "base": {"limit_km": 6, "skip_apps": true, "skip_static": true, "skip_passive": true}
}`

func writeScenario(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "fleet.json")
	if err := os.WriteFile(path, []byte(smallScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func readFleetManifest(t *testing.T, out string) fleet.Manifest {
	t.Helper()
	f, err := os.Open(filepath.Join(out, "fleet-manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	man, err := fleet.ReadManifest(f)
	if err != nil {
		t.Fatal(err)
	}
	return man
}

func TestFleetrunSuccess(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out")
	code := realMain([]string{
		"-scenario", writeScenario(t, dir),
		"-workers", "2",
		"-out", out,
		"-metrics", filepath.Join(dir, "obs.json"),
		"-archive",
	})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	man := readFleetManifest(t, out)
	if man.Failed != 0 || len(man.Runs) != 3 {
		t.Fatalf("manifest = %d runs, %d failed; want 3 ok", len(man.Runs), man.Failed)
	}
	for _, rec := range man.Runs {
		if rec.Dataset == "" {
			t.Errorf("run %d has no archived dataset despite -archive", rec.Index)
		}
		if _, err := os.Stat(filepath.Join(out, "runs", rec.Dataset)); err != nil {
			t.Errorf("archived dataset missing: %v", err)
		}
	}
	report, err := os.ReadFile(filepath.Join(out, "fleet-report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "3 replicates") {
		t.Errorf("report file looks wrong:\n%s", report)
	}
	if _, err := os.Stat(filepath.Join(dir, "obs.json")); err != nil {
		t.Errorf("obs manifest missing: %v", err)
	}
}

// TestFleetrunPanicContainment pins the acceptance contract through the
// real CLI path: an injected per-run panic yields a manifest failure
// entry and a nonzero exit code without killing sibling runs.
func TestFleetrunPanicContainment(t *testing.T) {
	testHookStart = func(index int, cell string, replicate int) {
		if index == 1 {
			panic("injected CLI failure")
		}
	}
	defer func() { testHookStart = nil }()

	dir := t.TempDir()
	out := filepath.Join(dir, "out")
	code := realMain([]string{
		"-scenario", writeScenario(t, dir),
		"-workers", "2",
		"-out", out,
	})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 for a fleet with a failed run", code)
	}
	man := readFleetManifest(t, out)
	if man.Failed != 1 || len(man.Runs) != 3 {
		t.Fatalf("manifest = %d runs, %d failed; want 3 runs, 1 failed", len(man.Runs), man.Failed)
	}
	for _, rec := range man.Runs {
		if rec.Index == 1 {
			if rec.Status != fleet.RunFailed || !strings.Contains(rec.Error, "injected CLI failure") {
				t.Errorf("run 1 = %+v, want the contained panic", rec)
			}
		} else if rec.Status != fleet.RunOK {
			t.Errorf("sibling run %d was killed: %+v", rec.Index, rec)
		}
	}
}

func TestFleetrunUsageErrors(t *testing.T) {
	if code := realMain(nil); code != 2 {
		t.Errorf("missing -scenario: exit %d, want 2", code)
	}
	if code := realMain([]string{"-scenario", "/does/not/exist.json"}); code != 1 {
		t.Errorf("unreadable scenario: exit %d, want 1", code)
	}
}
