package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/fleet"
)

// smallScenario is a 3-run (1 cell × 3 replicates) fleet small enough
// for CLI tests.
const smallScenario = `{
  "master_seed": 5,
  "replicates": 3,
  "base": {"limit_km": 6, "skip_apps": true, "skip_static": true, "skip_passive": true}
}`

func writeScenario(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "fleet.json")
	if err := os.WriteFile(path, []byte(smallScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func readFleetManifest(t *testing.T, out string) fleet.Manifest {
	t.Helper()
	f, err := os.Open(filepath.Join(out, "fleet-manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	man, err := fleet.ReadManifest(f)
	if err != nil {
		t.Fatal(err)
	}
	return man
}

func TestFleetrunSuccess(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out")
	code := realMain([]string{
		"-scenario", writeScenario(t, dir),
		"-workers", "2",
		"-out", out,
		"-metrics", filepath.Join(dir, "obs", "nested", "obs.json"),
		"-archive",
	})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	man := readFleetManifest(t, out)
	if man.Failed != 0 || len(man.Runs) != 3 {
		t.Fatalf("manifest = %d runs, %d failed; want 3 ok", len(man.Runs), man.Failed)
	}
	for _, rec := range man.Runs {
		if rec.Dataset == "" {
			t.Errorf("run %d has no archived dataset despite -archive", rec.Index)
		}
		if _, err := os.Stat(filepath.Join(out, "runs", rec.Dataset)); err != nil {
			t.Errorf("archived dataset missing: %v", err)
		}
	}
	report, err := os.ReadFile(filepath.Join(out, "fleet-report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "3 replicates") {
		t.Errorf("report file looks wrong:\n%s", report)
	}
	// -metrics creates its parent directories instead of failing with a
	// bare open error.
	if _, err := os.Stat(filepath.Join(dir, "obs", "nested", "obs.json")); err != nil {
		t.Errorf("obs manifest missing: %v", err)
	}
}

// TestFleetrunPanicContainment pins the acceptance contract through the
// real CLI path: an injected per-run panic yields a manifest failure
// entry and a nonzero exit code without killing sibling runs.
func TestFleetrunPanicContainment(t *testing.T) {
	testHookStart = func(index int, cell string, replicate int) {
		if index == 1 {
			panic("injected CLI failure")
		}
	}
	defer func() { testHookStart = nil }()

	dir := t.TempDir()
	out := filepath.Join(dir, "out")
	code := realMain([]string{
		"-scenario", writeScenario(t, dir),
		"-workers", "2",
		"-out", out,
	})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 for a fleet with a failed run", code)
	}
	man := readFleetManifest(t, out)
	if man.Failed != 1 || len(man.Runs) != 3 {
		t.Fatalf("manifest = %d runs, %d failed; want 3 runs, 1 failed", len(man.Runs), man.Failed)
	}
	for _, rec := range man.Runs {
		if rec.Index == 1 {
			if rec.Status != fleet.RunFailed || !strings.Contains(rec.Error, "injected CLI failure") {
				t.Errorf("run 1 = %+v, want the contained panic", rec)
			}
		} else if rec.Status != fleet.RunOK {
			t.Errorf("sibling run %d was killed: %+v", rec.Index, rec)
		}
	}
}

func TestFleetrunUsageErrors(t *testing.T) {
	if code := realMain(nil); code != 2 {
		t.Errorf("missing -scenario: exit %d, want 2", code)
	}
	if code := realMain([]string{"-scenario", "/does/not/exist.json"}); code != 1 {
		t.Errorf("unreadable scenario: exit %d, want 1", code)
	}
	dir := t.TempDir()
	scenario := writeScenario(t, dir)
	if code := realMain([]string{"-scenario", scenario, "-serve", ":0", "-push", "http://x"}); code != 2 {
		t.Errorf("-serve with -push: exit %d, want 2", code)
	}
	if code := realMain([]string{"-scenario", scenario, "-cells", "0"}); code != 2 {
		t.Errorf("-cells without -push: exit %d, want 2", code)
	}
	// -cells validation fails before any network or campaign work.
	if code := realMain([]string{"-scenario", scenario, "-push", "http://127.0.0.1:1", "-cells", "5"}); code != 1 {
		t.Errorf("out-of-range -cells: exit %d, want 1", code)
	}
	if code := realMain([]string{"-scenario", scenario, "-push", "http://127.0.0.1:1", "-cells", "x-y"}); code != 1 {
		t.Errorf("malformed -cells: exit %d, want 1", code)
	}
}

func TestParseCells(t *testing.T) {
	got, err := parseCells("0-1, 3", 5)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{0: true, 1: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("parseCells = %v, want %v", got, want)
	}
	for i := range want {
		if !got[i] {
			t.Errorf("cell %d missing from %v", i, got)
		}
	}
	if set, err := parseCells("", 5); set != nil || err != nil {
		t.Errorf("empty spec = %v, %v; want nil, nil", set, err)
	}
	for _, bad := range []string{"2-1", "-1", "5", "1-5", "a"} {
		if _, err := parseCells(bad, 5); err == nil {
			t.Errorf("parseCells(%q) accepted", bad)
		}
	}
}

// sweepScenario has two sweep cells so a distributed fleet can split it
// across workers.
const sweepScenario = `{
  "master_seed": 5,
  "replicates": 2,
  "base": {"limit_km": 6, "skip_apps": true, "skip_static": true, "skip_passive": true},
  "sweep": [{"field": "disable_edge", "values": [false, true]}]
}`

func waitForAddr(t *testing.T, path string) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		data, err := os.ReadFile(path)
		if err == nil && len(bytes.TrimSpace(data)) > 0 {
			return string(bytes.TrimSpace(data))
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("collector never published fleetsync-addr.txt")
	return ""
}

// TestFleetrunDistributedMatchesSingleProcess is the CLI-level pin of
// the fleetsync contract: a -serve collector fed by two -push workers
// over loopback writes the same report and manifest, byte for byte, as
// one local fleetrun of the same scenario.
func TestFleetrunDistributedMatchesSingleProcess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.json")
	if err := os.WriteFile(path, []byte(sweepScenario), 0o644); err != nil {
		t.Fatal(err)
	}

	single := filepath.Join(dir, "single")
	if code := realMain([]string{"-scenario", path, "-workers", "2", "-out", single}); code != 0 {
		t.Fatalf("single-process run: exit %d", code)
	}

	collected := filepath.Join(dir, "collected")
	serveDone := make(chan int, 1)
	go func() {
		serveDone <- realMain([]string{"-scenario", path, "-serve", "127.0.0.1:0", "-out", collected})
	}()
	url := "http://" + waitForAddr(t, filepath.Join(collected, "fleetsync-addr.txt"))
	if code := realMain([]string{"-scenario", path, "-push", url, "-cells", "0"}); code != 0 {
		t.Fatalf("worker for cell 0: exit %d", code)
	}
	if code := realMain([]string{"-scenario", path, "-push", url, "-cells", "1"}); code != 0 {
		t.Fatalf("worker for cell 1: exit %d", code)
	}
	if code := <-serveDone; code != 0 {
		t.Fatalf("collector: exit %d", code)
	}

	for _, name := range []string{"fleet-report.txt", "fleet-manifest.json"} {
		want, err := os.ReadFile(filepath.Join(single, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(collected, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("distributed %s differs from single-process run:\n--- got ---\n%s--- want ---\n%s", name, got, want)
		}
	}
}

// archiveScenario sets a relative archive_dir, which must resolve
// against the scenario file's directory — not fleetrun's cwd.
const archiveScenario = `{
  "master_seed": 5,
  "replicates": 1,
  "archive_dir": "results/runs",
  "base": {"limit_km": 6, "skip_apps": true, "skip_static": true, "skip_passive": true}
}`

func TestFleetrunScenarioRelativeArchiveDir(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.json")
	if err := os.WriteFile(path, []byte(archiveScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := realMain([]string{"-scenario", path, "-out", filepath.Join(dir, "out")}); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	// The archive (and its parents) landed next to the scenario file.
	if _, err := os.Stat(filepath.Join(dir, "results", "runs", "run-000.json")); err != nil {
		t.Errorf("scenario-relative archive missing: %v", err)
	}
	if _, err := os.Stat("results"); err == nil {
		t.Error("archive_dir resolved against the cwd, not the scenario file")
	}
}

func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	fn()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	os.Stderr = old
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestFleetrunUnwritableOutDirError(t *testing.T) {
	dir := t.TempDir()
	scenario := writeScenario(t, dir)
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var code int
	stderr := captureStderr(t, func() {
		code = realMain([]string{"-scenario", scenario, "-out", filepath.Join(blocker, "out")})
	})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stderr, "create output directory") {
		t.Errorf("unwritable -out produced a bare error:\n%s", stderr)
	}
}
