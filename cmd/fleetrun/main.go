// Command fleetrun executes a fleet scenario: many cellwheels campaigns
// — a sweep grid over config fields times a replicate count — run as one
// deterministic job, reduced to cross-replicate statistics per sweep
// cell.
//
// Usage:
//
//	fleetrun -scenario fleet.json [-workers N] [-out dir]
//	         [-archive] [-metrics manifest.json]
//	fleetrun -scenario fleet.json -serve 127.0.0.1:8080 [-out dir]
//	fleetrun -scenario fleet.json -push http://host:8080 [-cells 0-1,3]
//
// The fleet report is printed to stdout and written, together with the
// fleet manifest (the full run matrix with per-run seeds and outcomes),
// into the -out directory. Both are byte-identical for any -workers
// value. -archive additionally keeps every run's full dataset under
// <out>/runs/; without it datasets are discarded as soon as their
// headline metrics are folded in, so fleets of any size run in bounded
// memory. A scenario's own archive_dir, when relative, resolves against
// the scenario file's directory.
//
// Distributed fleets split the same scenario across machines. -serve
// runs the collector: an HTTP endpoint (internal/fleetsync) that
// receives content-addressed run artifacts from workers, validates each
// against the scenario's positional run matrix, and reduces them
// streamingly; once every expected run has arrived it writes the same
// report and manifest — byte-identical — that a single-process run
// would. The bound address is written to <out>/fleetsync-addr.txt (so
// ":0" works in scripts). -push runs a worker: it executes its -cells
// subset of the sweep (comma-separated cell indexes and ranges; default
// all) and pushes each finished run to the collector, resumably and
// idempotently — a worker can crash mid-push and simply be rerun. Both
// sides fingerprint the scenario file (sha256), so a worker pushing a
// different scenario is rejected before any run is folded.
//
// A run that fails — including one that panics — is contained: it is
// recorded in the fleet manifest with its error, its sibling runs
// complete, and fleetrun exits nonzero.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/nuwins/cellwheels"
	"github.com/nuwins/cellwheels/internal/atomicio"
	"github.com/nuwins/cellwheels/internal/fleetsync"
	"github.com/nuwins/cellwheels/internal/obs"
)

// testHookStart is the test-only failure-injection seam: main_test.go
// points it at a panicking hook to pin the containment contract through
// the real CLI path. Always nil in production.
var testHookStart func(index int, cell string, replicate int)

func main() { os.Exit(realMain(os.Args[1:])) }

func realMain(args []string) int {
	fs := flag.NewFlagSet("fleetrun", flag.ContinueOnError)
	var (
		scenario    = fs.String("scenario", "", "fleet scenario JSON (required; see ParseFleetScenario)")
		workers     = fs.Int("workers", 0, "concurrent runs; overrides the scenario's value (0 = keep it); output is identical for any value")
		out         = fs.String("out", "fleet-out", "output directory for fleet-report.txt and fleet-manifest.json")
		archive     = fs.Bool("archive", false, "keep every run's full dataset under <out>/runs/ instead of discarding after reduction")
		metricsPath = fs.String("metrics", "", "write the merged observability manifest (JSON) to this path")
		serveAddr   = fs.String("serve", "", "run as a fleetsync collector on this address (e.g. 127.0.0.1:8080, or :0 to pick a port); the bound address is written to <out>/fleetsync-addr.txt")
		pushURL     = fs.String("push", "", "run as a fleetsync worker: execute this scenario (or its -cells subset) and push finished runs to the collector at this URL")
		cellsSpec   = fs.String("cells", "", "with -push: the sweep-cell indexes this worker runs, as comma-separated indexes and ranges (e.g. \"0-1,3\"); empty means every cell")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *scenario == "" {
		fmt.Fprintln(os.Stderr, "fleetrun: -scenario is required")
		fs.Usage()
		return 2
	}
	if *serveAddr != "" && *pushURL != "" {
		fmt.Fprintln(os.Stderr, "fleetrun: -serve and -push are mutually exclusive")
		return 2
	}
	if *cellsSpec != "" && *pushURL == "" {
		fmt.Fprintln(os.Stderr, "fleetrun: -cells only makes sense with -push")
		return 2
	}

	// The recorder is the only wall clock this command touches.
	rec := obs.New()

	// The scenario is read whole so collector and workers can agree on a
	// fingerprint of its exact bytes — not its parsed meaning.
	raw, err := os.ReadFile(*scenario)
	if err != nil {
		return fail(err)
	}
	fingerprint := fmt.Sprintf("%x", sha256.Sum256(raw))
	cfg, err := cellwheels.ParseFleetScenario(bytes.NewReader(raw))
	if err != nil {
		return fail(err)
	}
	cfg.Obs = rec
	cfg.TestHookStart = testHookStart
	if *workers != 0 {
		cfg.Workers = *workers
	}
	// A scenario's own archive_dir is relative to the scenario file, not
	// to wherever fleetrun happens to be invoked from.
	if cfg.ArchiveDir != "" && !filepath.IsAbs(cfg.ArchiveDir) {
		cfg.ArchiveDir = filepath.Join(filepath.Dir(*scenario), cfg.ArchiveDir)
	}

	if *pushURL != "" {
		return runWorker(cfg, rec, *pushURL, *cellsSpec, *out, *archive, *metricsPath, fingerprint)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fail(fmt.Errorf("create output directory %s: %w", *out, err))
	}
	if *archive {
		cfg.ArchiveDir = filepath.Join(*out, "runs")
	}

	if *serveAddr != "" {
		return runCollector(cfg, rec, *serveAddr, *out, *metricsPath, fingerprint)
	}

	res, err := cellwheels.RunFleet(cfg)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "fleet finished in %v: %d runs, %d failed\n",
		//lint:allow timetaint — stderr banner timing only; never reaches the report or manifest
		rec.Elapsed().Round(time.Millisecond), res.Runs(), res.Failed())
	return writeOutputs(*out, *metricsPath, rec, res.Report(), res.WriteManifest, res.Runs(), res.Failed())
}

// runCollector is -serve: an HTTP collector that reduces runs pushed by
// workers, then writes the same outputs a single-process fleet would.
// SIGINT/SIGTERM finalizes early: the partial fold — the report over
// received runs plus the manifest — is still written before exiting
// nonzero, so an interrupted collection never loses what arrived.
func runCollector(cfg cellwheels.FleetConfig, rec *obs.Recorder, addr, out, metricsPath, fingerprint string) int {
	red, err := cellwheels.FleetReducer(cfg)
	if err != nil {
		return fail(err)
	}
	store, err := fleetsync.OpenStore(filepath.Join(out, "sync"))
	if err != nil {
		return fail(err)
	}
	col, err := fleetsync.NewCollector(fingerprint, red, store, rec)
	if err != nil {
		return fail(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fail(err)
	}
	// Publish the bound address only after the listener is live, so a
	// script that waits for this file can connect as soon as it appears.
	if err := writeFileAtomic(filepath.Join(out, "fleetsync-addr.txt"), func(w io.Writer) error {
		_, werr := fmt.Fprintln(w, ln.Addr().String())
		return werr
	}); err != nil {
		return fail(err)
	}
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{
		Handler: col.Handler(),
		// A worker that stalls mid-header must not wedge the collector's
		// shutdown drain.
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "fleetsync collector for scenario %s listening on %s (%d runs expected)\n",
		fingerprint[:12], ln.Addr(), red.Total())

	interrupted := false
	select {
	case <-col.Done():
	case <-sigCtx.Done():
		interrupted = true
		fmt.Fprintln(os.Stderr, "fleetrun: signal received; writing partial fleet outputs")
	case err := <-serveErr:
		return fail(err)
	}
	stop() // a second signal kills immediately instead of waiting the drain out
	// Graceful stop: the announce that completed the fleet — or was
	// in flight when the signal landed — still needs its response
	// written before the fold is read out.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
	}

	res := col.Result()
	fmt.Fprintf(os.Stderr, "fleet collected in %v: %d runs, %d failed\n",
		//lint:allow timetaint — stderr banner timing only; never reaches the report or manifest
		rec.Elapsed().Round(time.Millisecond), len(res.Manifest.Runs), res.Manifest.Failed)
	code := writeOutputs(out, metricsPath, rec, res.Report(), res.Manifest.WriteJSON,
		len(res.Manifest.Runs), res.Manifest.Failed)
	if interrupted && !col.Complete() {
		man := col.Manifest()
		fmt.Fprintf(os.Stderr, "fleetrun: interrupted with %d of %d runs collected (partial outputs in %s/)\n",
			man.Received, man.Total, out)
		if code == 0 {
			code = 1
		}
	}
	return code
}

// runWorker is -push: execute the worker's cell subset and sync every
// finished run to the collector. The collector writes the fleet outputs;
// the worker's -out is only used when it archives its own datasets.
func runWorker(cfg cellwheels.FleetConfig, rec *obs.Recorder, pushURL, cellsSpec, out string, archive bool, metricsPath, fingerprint string) int {
	cells, err := cellwheels.FleetCells(cfg)
	if err != nil {
		return fail(err)
	}
	keep, err := parseCells(cellsSpec, len(cells))
	if err != nil {
		return fail(err)
	}
	if archive {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return fail(fmt.Errorf("create output directory %s: %w", out, err))
		}
		cfg.ArchiveDir = filepath.Join(out, "runs")
	}
	p, err := fleetsync.NewPusher(fleetsync.PusherConfig{
		BaseURL:  pushURL,
		Scenario: fingerprint,
		Obs:      rec,
	})
	if err != nil {
		return fail(err)
	}
	// Fail fast — before any campaign runs — if the collector is absent
	// or reducing a different scenario.
	man, err := p.Status()
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "collector at %s holds %d of %d runs\n", pushURL, man.Received, man.Total)

	if keep != nil {
		cfg.CellFilter = func(i int, _ string) bool { return keep[i] }
	}
	cfg.OnRun = p.PushRun
	res, err := cellwheels.RunFleet(cfg)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "worker finished in %v: %d runs (%d failed) pushed to %s, %d retries, %d resumed uploads\n",
		//lint:allow timetaint — stderr banner timing only; never reaches the report or manifest
		rec.Elapsed().Round(time.Millisecond), res.Runs(), res.Failed(), pushURL,
		rec.Counter("fleetsync/retries").Value(), rec.Counter("fleetsync/resumes").Value())

	if metricsPath != "" {
		if err := writeMetrics(metricsPath, rec); err != nil {
			return fail(err)
		}
	}
	if res.Failed() > 0 {
		fmt.Fprintf(os.Stderr, "fleetrun: %d of %d runs failed (recorded in the collector's manifest)\n",
			res.Failed(), res.Runs())
		return 1
	}
	return 0
}

// parseCells parses a -cells spec ("0-1,3") into the kept cell-index
// set, validated against the scenario's n sweep cells. Empty spec means
// no restriction (nil set).
func parseCells(spec string, n int) (map[int]bool, error) {
	if spec == "" {
		return nil, nil
	}
	keep := make(map[int]bool)
	for _, part := range strings.Split(spec, ",") {
		lo, hi, isRange := strings.Cut(strings.TrimSpace(part), "-")
		if !isRange {
			hi = lo
		}
		a, errA := strconv.Atoi(lo)
		b, errB := strconv.Atoi(hi)
		if errA != nil || errB != nil {
			return nil, fmt.Errorf("bad -cells entry %q (want an index or lo-hi range)", part)
		}
		if a > b || a < 0 || b >= n {
			return nil, fmt.Errorf("-cells entry %q outside this scenario's %d sweep cells", part, n)
		}
		for i := a; i <= b; i++ {
			keep[i] = true
		}
	}
	return keep, nil
}

// writeOutputs installs the fleet report, manifest, and (optionally) obs
// manifest, and converts failed runs into the exit code.
func writeOutputs(out, metricsPath string, rec *obs.Recorder, report string, writeManifest func(io.Writer) error, runs, failed int) int {
	fmt.Print(report)
	if err := writeFileAtomic(filepath.Join(out, "fleet-report.txt"), func(w io.Writer) error {
		_, werr := io.WriteString(w, report)
		return werr
	}); err != nil {
		return fail(err)
	}
	manifestPath := filepath.Join(out, "fleet-manifest.json")
	if err := writeFileAtomic(manifestPath, writeManifest); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "fleet report and manifest written to %s/\n", out)

	if metricsPath != "" {
		rec.SetLabel("fleet_manifest", manifestPath)
		if err := writeMetrics(metricsPath, rec); err != nil {
			return fail(err)
		}
	}

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "fleetrun: %d of %d runs failed (see %s)\n", failed, runs, manifestPath)
		return 1
	}
	return 0
}

// writeMetrics writes the obs manifest, creating the parent directory —
// a -metrics path in a fresh results tree should not need a manual
// mkdir first.
func writeMetrics(path string, rec *obs.Recorder) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("create metrics directory %s: %w", dir, err)
		}
	}
	if err := writeFileAtomic(path, rec.WriteManifest); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "obs manifest written to %s\n", path)
	return nil
}

// writeFileAtomic installs one fleet artifact via the shared atomic
// writer — staged temp, chmod, rename; never a truncated file.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	return atomicio.WriteFile(path, 0o644, write)
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "fleetrun:", err)
	return 1
}
