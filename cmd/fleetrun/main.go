// Command fleetrun executes a fleet scenario: many cellwheels campaigns
// — a sweep grid over config fields times a replicate count — run as one
// deterministic job, reduced to cross-replicate statistics per sweep
// cell.
//
// Usage:
//
//	fleetrun -scenario fleet.json [-workers N] [-out dir]
//	         [-archive] [-metrics manifest.json]
//
// The fleet report is printed to stdout and written, together with the
// fleet manifest (the full run matrix with per-run seeds and outcomes),
// into the -out directory. Both are byte-identical for any -workers
// value. -archive additionally keeps every run's full dataset under
// <out>/runs/; without it datasets are discarded as soon as their
// headline metrics are folded in, so fleets of any size run in bounded
// memory.
//
// A run that fails — including one that panics — is contained: it is
// recorded in the fleet manifest with its error, its sibling runs
// complete, and fleetrun exits nonzero.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/nuwins/cellwheels"
	"github.com/nuwins/cellwheels/internal/obs"
)

// testHookStart is the test-only failure-injection seam: main_test.go
// points it at a panicking hook to pin the containment contract through
// the real CLI path. Always nil in production.
var testHookStart func(index int, cell string, replicate int)

func main() { os.Exit(realMain(os.Args[1:])) }

func realMain(args []string) int {
	fs := flag.NewFlagSet("fleetrun", flag.ContinueOnError)
	var (
		scenario    = fs.String("scenario", "", "fleet scenario JSON (required; see ParseFleetScenario)")
		workers     = fs.Int("workers", 0, "concurrent runs; overrides the scenario's value (0 = keep it); output is identical for any value")
		out         = fs.String("out", "fleet-out", "output directory for fleet-report.txt and fleet-manifest.json")
		archive     = fs.Bool("archive", false, "keep every run's full dataset under <out>/runs/ instead of discarding after reduction")
		metricsPath = fs.String("metrics", "", "write the merged observability manifest (JSON) to this path")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *scenario == "" {
		fmt.Fprintln(os.Stderr, "fleetrun: -scenario is required")
		fs.Usage()
		return 2
	}

	// The recorder is the only wall clock this command touches.
	rec := obs.New()

	f, err := os.Open(*scenario)
	if err != nil {
		return fail(err)
	}
	cfg, err := cellwheels.ParseFleetScenario(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return fail(err)
	}
	cfg.Obs = rec
	cfg.TestHookStart = testHookStart
	if *workers != 0 {
		cfg.Workers = *workers
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fail(err)
	}
	if *archive {
		cfg.ArchiveDir = filepath.Join(*out, "runs")
	}

	res, err := cellwheels.RunFleet(cfg)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "fleet finished in %v: %d runs, %d failed\n",
		//lint:allow timetaint — stderr banner timing only; never reaches the report or manifest
		rec.Elapsed().Round(time.Millisecond), res.Runs(), res.Failed())

	report := res.Report()
	fmt.Print(report)
	if err := writeFileAtomic(filepath.Join(*out, "fleet-report.txt"), func(w io.Writer) error {
		_, werr := io.WriteString(w, report)
		return werr
	}); err != nil {
		return fail(err)
	}
	manifestPath := filepath.Join(*out, "fleet-manifest.json")
	if err := writeFileAtomic(manifestPath, res.WriteManifest); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "fleet report and manifest written to %s/\n", *out)

	if *metricsPath != "" {
		rec.SetLabel("fleet_manifest", manifestPath)
		if err := writeFileAtomic(*metricsPath, rec.WriteManifest); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "obs manifest written to %s\n", *metricsPath)
	}

	if res.Failed() > 0 {
		fmt.Fprintf(os.Stderr, "fleetrun: %d of %d runs failed (see %s)\n",
			res.Failed(), res.Runs(), manifestPath)
		return 1
	}
	return 0
}

// writeFileAtomic stages the write in a temp file next to the target and
// renames it into place only after a complete write — the repo-wide
// pattern for artifacts that must never exist truncated.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".fleet-tmp-*")
	if err != nil {
		return err
	}
	werr := write(tmp)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), path)
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "fleetrun:", err)
	return 1
}
