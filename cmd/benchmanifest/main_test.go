package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: github.com/nuwins/cellwheels
cpu: whatever
BenchmarkFleetRun-8    	       1	1934127716 ns/op	355441688 B/op	 5894269 allocs/op
BenchmarkCampaignRun-8 	       2	 593717264 ns/op
ok  	github.com/nuwins/cellwheels	4.5s
pkg: github.com/nuwins/cellwheels/internal/ue
BenchmarkCrowdStep/ues=10000-8  	      20	     11656 ns/op	       3 B/op	       0 allocs/op
PASS
`
	entries, err := parseBench([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("parsed %d entries, want 3: %+v", len(entries), entries)
	}
	// Sorted by name, cpu suffix stripped.
	if entries[0].Name != "BenchmarkCampaignRun" ||
		entries[1].Name != "BenchmarkCrowdStep/ues=10000" ||
		entries[2].Name != "BenchmarkFleetRun" {
		t.Fatalf("wrong names/order: %+v", entries)
	}
	if entries[1].Iterations != 20 || entries[1].NsPerOp != 11656 || entries[1].BytesPerOp != 3 || entries[1].AllocsPerOp != 0 {
		t.Fatalf("crowd entry mangled: %+v", entries[1])
	}
	if entries[0].NsPerOp != 593717264 || entries[0].BytesPerOp != 0 {
		t.Fatalf("campaign entry (no -benchmem columns) mangled: %+v", entries[0])
	}
}

func TestParseBenchEmpty(t *testing.T) {
	entries, err := parseBench([]byte("PASS\nok \tnothing\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("parsed %d entries from benchless output", len(entries))
	}
}

func TestCompare(t *testing.T) {
	old := []Entry{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 10},
		{Name: "BenchmarkB", NsPerOp: 2000, AllocsPerOp: 0},
		{Name: "BenchmarkGone", NsPerOp: 500},
	}
	fresh := []Entry{
		{Name: "BenchmarkA", NsPerOp: 1100, AllocsPerOp: 10}, // +10%: within budget
		{Name: "BenchmarkB", NsPerOp: 2400, AllocsPerOp: 1},  // +20% and a new alloc
		{Name: "BenchmarkNew", NsPerOp: 99},                  // new coverage: fine
	}
	problems := compare(old, fresh)
	if len(problems) != 3 {
		t.Fatalf("got %d problems, want 3:\n%s", len(problems), strings.Join(problems, "\n"))
	}
	joined := strings.Join(problems, "\n")
	for _, want := range []string{
		"BenchmarkB: 2400 ns/op, +20%",
		"BenchmarkB: 1 allocs/op, manifest records 0",
		"BenchmarkGone: in manifest but missing",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("problems missing %q:\n%s", want, joined)
		}
	}
}

func TestCompareClean(t *testing.T) {
	old := []Entry{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 5},
		// Worker-pool jitter: a few allocs on millions is within the
		// 0.1% slack.
		{Name: "BenchmarkPool", NsPerOp: 1000, AllocsPerOp: 2_400_000},
	}
	fresh := []Entry{
		{Name: "BenchmarkA", NsPerOp: 1149, AllocsPerOp: 4},
		{Name: "BenchmarkPool", NsPerOp: 1000, AllocsPerOp: 2_400_020},
	}
	if problems := compare(old, fresh); len(problems) != 0 {
		t.Fatalf("clean run reported problems: %v", problems)
	}
}

func TestCompareAllocSlackScales(t *testing.T) {
	// Small counts are strict: 0 → 1 is a regression.
	if p := compare([]Entry{{Name: "B", AllocsPerOp: 0}}, []Entry{{Name: "B", AllocsPerOp: 1}}); len(p) != 1 {
		t.Fatalf("0→1 allocs not flagged: %v", p)
	}
	// Large counts get 0.1%: +0.1% passes, beyond fails.
	if p := compare([]Entry{{Name: "B", AllocsPerOp: 1_000_000}}, []Entry{{Name: "B", AllocsPerOp: 1_001_000}}); len(p) != 0 {
		t.Fatalf("within-slack increase flagged: %v", p)
	}
	if p := compare([]Entry{{Name: "B", AllocsPerOp: 1_000_000}}, []Entry{{Name: "B", AllocsPerOp: 1_001_001}}); len(p) != 1 {
		t.Fatalf("beyond-slack increase not flagged: %v", p)
	}
}

func TestWriteManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := Manifest{Schema: schema, GoVersion: "go0.0", Benchtime: "1x",
		Entries: []Entry{{Name: "BenchmarkX", Iterations: 3, NsPerOp: 1.5}}}
	if err := writeManifest(path, want); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Schema != schema || len(got.Entries) != 1 || got.Entries[0].Name != "BenchmarkX" {
		t.Fatalf("round trip mangled manifest: %+v", got)
	}
}
