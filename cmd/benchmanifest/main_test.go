package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: github.com/nuwins/cellwheels
cpu: whatever
BenchmarkFleetRun-8    	       1	1934127716 ns/op	355441688 B/op	 5894269 allocs/op
BenchmarkCampaignRun-8 	       2	 593717264 ns/op
ok  	github.com/nuwins/cellwheels	4.5s
pkg: github.com/nuwins/cellwheels/internal/ue
BenchmarkCrowdStep/ues=10000-8  	      20	     11656 ns/op	       3 B/op	       0 allocs/op
PASS
`
	entries, err := parseBench([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("parsed %d entries, want 3: %+v", len(entries), entries)
	}
	// Sorted by name, cpu suffix stripped.
	if entries[0].Name != "BenchmarkCampaignRun" ||
		entries[1].Name != "BenchmarkCrowdStep/ues=10000" ||
		entries[2].Name != "BenchmarkFleetRun" {
		t.Fatalf("wrong names/order: %+v", entries)
	}
	if entries[1].Iterations != 20 || entries[1].NsPerOp != 11656 || entries[1].BytesPerOp != 3 || entries[1].AllocsPerOp != 0 {
		t.Fatalf("crowd entry mangled: %+v", entries[1])
	}
	if entries[0].NsPerOp != 593717264 || entries[0].BytesPerOp != 0 {
		t.Fatalf("campaign entry (no -benchmem columns) mangled: %+v", entries[0])
	}
}

func TestParseBenchEmpty(t *testing.T) {
	entries, err := parseBench([]byte("PASS\nok \tnothing\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("parsed %d entries from benchless output", len(entries))
	}
}

func TestWriteManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := Manifest{Schema: schema, GoVersion: "go0.0", Benchtime: "1x",
		Entries: []Entry{{Name: "BenchmarkX", Iterations: 3, NsPerOp: 1.5}}}
	if err := writeManifest(path, want); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Schema != schema || len(got.Entries) != 1 || got.Entries[0].Name != "BenchmarkX" {
		t.Fatalf("round trip mangled manifest: %+v", got)
	}
}
