// Command benchmanifest runs the repo's headline benchmarks — the
// campaign engine, the fleet engine, the crowd step, the report
// assembly, and the logsync merge — and writes their figures to a
// machine-readable JSON manifest (BENCH_0007.json in CI). The manifest
// is what lets a reviewer compare engine cost across commits without
// rerunning anything: ns/op and allocs/op per benchmark, stamped with
// the Go version that produced them.
//
// Usage:
//
//	benchmanifest [-o BENCH_0007.json] [-benchtime 3x] [-bench regexp]
//	benchmanifest -check BENCH_0007.json
//
// With -check, no manifest is written: the benchmarks run fresh (at the
// manifest's recorded benchtime) and the figures are compared against
// the named (checked-in) manifest. The command exits 1 — failing CI —
// when any benchmark regresses more than 15% in ns/op, allocates more
// per op than the manifest records (beyond a 0.1% concurrency-jitter
// floor), or has disappeared from the run. This is the perf half of the repo's ratchet,
// the same shape as the lint baseline: the manifest may only be moved
// deliberately, by rerunning `make bench-manifest` and committing the
// result.
//
// The output is deterministic for a given bench run: entries are sorted
// by name and carry no timestamps.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"github.com/nuwins/cellwheels/internal/atomicio"
)

// Manifest is the file benchmanifest writes.
type Manifest struct {
	Schema    string  `json:"schema"`
	GoVersion string  `json:"go_version"`
	Benchtime string  `json:"benchtime"`
	Entries   []Entry `json:"benchmarks"`
}

// Entry is one benchmark's figures.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// schema versions the manifest format.
const schema = "cellwheels/bench/v1"

// defaultBench selects the headline benchmarks: whole-campaign cost,
// fleet orchestration cost, the crowd engine's step, the paper-report
// assembly, and the logsync merge.
const defaultBench = "^(BenchmarkCampaignRun|BenchmarkFleetRun|BenchmarkCrowdStep|BenchmarkReport|BenchmarkLogsyncMerge)$"

// nsTolerance is the relative ns/op slack -check allows before calling a
// regression: wall-clock figures are noisy across runs and machines, but
// a >15% slide on a headline benchmark is a real change, not jitter.
const nsTolerance = 0.15

// allocSlack returns the allocs/op increase tolerated for a benchmark
// that recorded old allocs. The engines are deterministic, but the
// campaign and fleet worker pools grow a handful of scheduler-dependent
// structures, so multi-million-alloc entries flutter by a few counts
// between runs. 0.1% covers that jitter while staying far below any
// real regression — one new per-tick allocation adds allocations
// proportional to the tick count, thousands of times the slack — and
// integer division keeps small-count benchmarks (crowd step: zero
// allocs) perfectly strict.
func allocSlack(old int64) int64 { return old / 1000 }

func main() {
	var (
		out       = flag.String("o", "BENCH_0007.json", "output manifest path")
		benchtime = flag.String("benchtime", "3x", "go test -benchtime value")
		bench     = flag.String("bench", defaultBench, "go test -bench regexp")
		check     = flag.String("check", "", "compare a fresh run against this manifest and exit 1 on regression (writes nothing)")
	)
	flag.Parse()

	var old Manifest
	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(data, &old); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *check, err))
		}
		if old.Schema != schema {
			fatal(fmt.Errorf("%s: schema %q, want %q", *check, old.Schema, schema))
		}
		// Rerun exactly what the manifest was built from, so the
		// comparison is one-to-one.
		*benchtime = old.Benchtime
	}

	raw, err := runBenchmarks(*bench, *benchtime)
	if err != nil {
		fatal(err)
	}
	entries, err := parseBench(raw)
	if err != nil {
		fatal(err)
	}
	if len(entries) == 0 {
		fatal(fmt.Errorf("no benchmark lines matched %q — nothing to write", *bench))
	}

	if *check != "" {
		problems := compare(old.Entries, entries)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "benchmanifest: REGRESSION:", p)
		}
		if len(problems) > 0 {
			fmt.Fprintf(os.Stderr, "benchmanifest: %d regression(s) against %s — if intentional, rerun `make bench-manifest` and commit the new manifest\n", len(problems), *check)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchmanifest: %d benchmarks within budget of %s\n", len(entries), *check)
		return
	}

	m := Manifest{Schema: schema, GoVersion: runtime.Version(), Benchtime: *benchtime, Entries: entries}
	if err := writeManifest(*out, m); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchmanifest: %d benchmarks written to %s\n", len(entries), *out)
}

// compare returns one line per budget violation in fresh relative to the
// checked-in entries. Benchmarks present only in fresh are fine (new
// coverage); benchmarks missing from fresh fail, so the ratchet cannot
// be silently shrunk by deleting a benchmark.
func compare(old, fresh []Entry) []string {
	byName := make(map[string]Entry, len(fresh))
	for _, e := range fresh {
		byName[e.Name] = e
	}
	var problems []string
	for _, o := range old {
		f, ok := byName[o.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: in manifest but missing from this run", o.Name))
			continue
		}
		if o.NsPerOp > 0 && f.NsPerOp > o.NsPerOp*(1+nsTolerance) {
			problems = append(problems, fmt.Sprintf("%s: %.0f ns/op, +%.0f%% over manifest's %.0f (budget +%.0f%%)",
				o.Name, f.NsPerOp, (f.NsPerOp/o.NsPerOp-1)*100, o.NsPerOp, nsTolerance*100))
		}
		if f.AllocsPerOp > o.AllocsPerOp+allocSlack(o.AllocsPerOp) {
			problems = append(problems, fmt.Sprintf("%s: %d allocs/op, manifest records %d — a new hot-path allocation",
				o.Name, f.AllocsPerOp, o.AllocsPerOp))
		}
	}
	return problems
}

// runBenchmarks shells out to the go tool; the command's stdout is the
// bench output to parse, stderr passes through for diagnostics.
func runBenchmarks(bench, benchtime string) ([]byte, error) {
	cmd := exec.Command("go", "test", "-run=^$", "-bench="+bench,
		"-benchtime="+benchtime, "-benchmem", "./...")
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	return stdout.Bytes(), nil
}

// benchLine matches one `go test -bench` result row:
//
//	BenchmarkCrowdStep/ues=10000-8   20   11656 ns/op   3 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// cpuSuffix is the trailing -<GOMAXPROCS> the test binary appends; it is
// stripped so manifests from machines with different core counts diff
// cleanly on the benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts the result rows, sorted by name.
func parseBench(out []byte) ([]Entry, error) {
	var entries []Entry
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		e := Entry{Name: cpuSuffix.ReplaceAllString(m[1], "")}
		var err error
		if e.Iterations, err = strconv.ParseInt(m[2], 10, 64); err != nil {
			return nil, fmt.Errorf("parse %q: %w", line, err)
		}
		if e.NsPerOp, err = strconv.ParseFloat(m[3], 64); err != nil {
			return nil, fmt.Errorf("parse %q: %w", line, err)
		}
		if m[4] != "" {
			if e.BytesPerOp, err = strconv.ParseInt(m[4], 10, 64); err != nil {
				return nil, fmt.Errorf("parse %q: %w", line, err)
			}
		}
		if m[5] != "" {
			if e.AllocsPerOp, err = strconv.ParseInt(m[5], 10, 64); err != nil {
				return nil, fmt.Errorf("parse %q: %w", line, err)
			}
		}
		entries = append(entries, e)
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries, nil
}

// writeManifest installs the JSON through the shared atomic writer, the
// same pattern the dataset and run-manifest writers use.
func writeManifest(path string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFileBytes(path, 0o644, append(data, '\n'))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchmanifest:", err)
	os.Exit(1)
}
