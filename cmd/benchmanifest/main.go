// Command benchmanifest runs the repo's headline benchmarks — the
// campaign engine, the fleet engine, and the crowd step — and writes
// their figures to a machine-readable JSON manifest (BENCH_0006.json in
// CI). The manifest is what lets a reviewer compare engine cost across
// commits without rerunning anything: ns/op and allocs/op per benchmark,
// stamped with the Go version that produced them.
//
// Usage:
//
//	benchmanifest [-o BENCH_0006.json] [-benchtime 1x] [-bench regexp]
//
// The output is deterministic for a given bench run: entries are sorted
// by name and carry no timestamps.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Manifest is the file benchmanifest writes.
type Manifest struct {
	Schema    string  `json:"schema"`
	GoVersion string  `json:"go_version"`
	Benchtime string  `json:"benchtime"`
	Entries   []Entry `json:"benchmarks"`
}

// Entry is one benchmark's figures.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// schema versions the manifest format.
const schema = "cellwheels/bench/v1"

// defaultBench selects the three headline benchmarks: whole-campaign
// cost, fleet orchestration cost, and the crowd engine's idle step.
const defaultBench = "^(BenchmarkCampaignRun|BenchmarkFleetRun|BenchmarkCrowdStep)$"

func main() {
	var (
		out       = flag.String("o", "BENCH_0006.json", "output manifest path")
		benchtime = flag.String("benchtime", "1x", "go test -benchtime value")
		bench     = flag.String("bench", defaultBench, "go test -bench regexp")
	)
	flag.Parse()

	raw, err := runBenchmarks(*bench, *benchtime)
	if err != nil {
		fatal(err)
	}
	entries, err := parseBench(raw)
	if err != nil {
		fatal(err)
	}
	if len(entries) == 0 {
		fatal(fmt.Errorf("no benchmark lines matched %q — nothing to write", *bench))
	}
	m := Manifest{Schema: schema, GoVersion: runtime.Version(), Benchtime: *benchtime, Entries: entries}
	if err := writeManifest(*out, m); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchmanifest: %d benchmarks written to %s\n", len(entries), *out)
}

// runBenchmarks shells out to the go tool; the command's stdout is the
// bench output to parse, stderr passes through for diagnostics.
func runBenchmarks(bench, benchtime string) ([]byte, error) {
	cmd := exec.Command("go", "test", "-run=^$", "-bench="+bench,
		"-benchtime="+benchtime, "-benchmem", "./...")
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	return stdout.Bytes(), nil
}

// benchLine matches one `go test -bench` result row:
//
//	BenchmarkCrowdStep/ues=10000-8   20   11656 ns/op   3 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// cpuSuffix is the trailing -<GOMAXPROCS> the test binary appends; it is
// stripped so manifests from machines with different core counts diff
// cleanly on the benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts the result rows, sorted by name.
func parseBench(out []byte) ([]Entry, error) {
	var entries []Entry
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		e := Entry{Name: cpuSuffix.ReplaceAllString(m[1], "")}
		var err error
		if e.Iterations, err = strconv.ParseInt(m[2], 10, 64); err != nil {
			return nil, fmt.Errorf("parse %q: %w", line, err)
		}
		if e.NsPerOp, err = strconv.ParseFloat(m[3], 64); err != nil {
			return nil, fmt.Errorf("parse %q: %w", line, err)
		}
		if m[4] != "" {
			if e.BytesPerOp, err = strconv.ParseInt(m[4], 10, 64); err != nil {
				return nil, fmt.Errorf("parse %q: %w", line, err)
			}
		}
		if m[5] != "" {
			if e.AllocsPerOp, err = strconv.ParseInt(m[5], 10, 64); err != nil {
				return nil, fmt.Errorf("parse %q: %w", line, err)
			}
		}
		entries = append(entries, e)
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries, nil
}

// writeManifest stages the JSON in a temp file and renames it into place,
// the same atomic pattern the dataset and run-manifest writers use.
func writeManifest(path string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bench-tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchmanifest:", err)
	os.Exit(1)
}
