// Command wheelsd is the cellwheels service: a long-lived daemon that
// runs campaigns, fleets, and fleetsync collections as jobs behind an
// HTTP/JSON API (internal/serve).
//
// Usage:
//
//	wheelsd [-addr 127.0.0.1:8080] [-data wheelsd-data]
//	        [-workers N] [-cache N] [-metrics manifest.json]
//
// The API:
//
//	POST /v1/jobs                          submit a job (campaign, fleet, or collect)
//	GET  /v1/jobs                          list jobs in submission order
//	GET  /v1/jobs/{id}                     one job's status and artifact list
//	GET  /v1/jobs/{id}/progress[?follow=1] live obs counters (NDJSON stream with follow)
//	GET  /v1/jobs/{id}/artifacts/{name}    download one artifact
//	     /fleetsync/v1/...                 the fleetsync protocol, while a collect job is live
//
// Jobs are content-addressed — the ID is the sha256 of the canonical
// spec — so re-submitting is idempotent, and every artifact is
// byte-identical to the equivalent drivetest/fleetrun invocation. The
// bound address is written to <data>/wheelsd-addr.txt after the
// listener is live, so scripts can pass -addr :0 and wait for the file.
//
// SIGINT/SIGTERM drains: no new submissions are accepted, every
// already-accepted job runs to completion and writes its artifacts, a
// live collect job finalizes with whatever runs have arrived, and only
// then does the daemon exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/nuwins/cellwheels/internal/atomicio"
	"github.com/nuwins/cellwheels/internal/obs"
	"github.com/nuwins/cellwheels/internal/serve"
)

func main() { os.Exit(realMain(os.Args[1:])) }

func realMain(args []string) int {
	fs := flag.NewFlagSet("wheelsd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address (\":0\" picks a free port; the bound address is written to <data>/wheelsd-addr.txt)")
		data        = fs.String("data", "wheelsd-data", "state directory; each job's artifacts live under <data>/jobs/<id>/")
		workers     = fs.Int("workers", 0, "concurrent pooled jobs (0 = GOMAXPROCS); any value produces byte-identical artifacts")
		cacheSize   = fs.Int("cache", 4, "precomputed-timeline cache capacity (entries)")
		metricsPath = fs.String("metrics", "", "write the daemon's observability manifest (JSON) to this path on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// The recorder is the only wall clock this command touches.
	rec := obs.New()
	s, err := serve.New(serve.Config{
		DataDir:   *data,
		Workers:   *workers,
		CacheSize: *cacheSize,
		Obs:       rec,
	})
	if err != nil {
		return fail(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	// Publish the bound address only after the listener is live, so a
	// script that waits for this file can connect as soon as it appears.
	if err := atomicio.WriteFile(filepath.Join(*data, "wheelsd-addr.txt"), 0o644, func(w io.Writer) error {
		_, werr := fmt.Fprintln(w, ln.Addr().String())
		return werr
	}); err != nil {
		return fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{
		Handler: s.Handler(),
		// A client that stalls mid-header would otherwise hold its
		// connection — and the SIGTERM drain below — open forever.
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "wheelsd listening on %s (data %s)\n", ln.Addr(), *data)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "wheelsd: signal received; draining jobs")
	case err := <-serveErr:
		return fail(err)
	}
	stop() // a second signal kills immediately instead of re-entering the drain

	// Drain order matters: jobs first — while the HTTP server still
	// answers status polls and artifact downloads for them — then the
	// listener. Submissions are already refused the moment draining
	// starts.
	if err := s.Shutdown(context.Background()); err != nil {
		return fail(err)
	}
	httpCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(httpCtx); err != nil {
		_ = srv.Close()
	}

	if *metricsPath != "" {
		s.Snapshot() // folds queue gauges into the recorder
		if err := atomicio.WriteFile(*metricsPath, 0o644, rec.WriteManifest); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "obs manifest written to %s\n", *metricsPath)
	}
	fmt.Fprintln(os.Stderr, "wheelsd: drained; exiting")
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "wheelsd:", err)
	return 1
}
