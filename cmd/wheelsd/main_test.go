package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSigtermDrainWithIdleConnection pins the daemon's exit contract: a
// SIGTERM received while a job is queued and a keep-alive client
// connection sits idle must still drain — the job runs to completion
// and writes its artifacts, the idle connection is torn down rather
// than waited on, the obs manifest lands, and realMain returns 0.
func TestSigtermDrainWithIdleConnection(t *testing.T) {
	data := t.TempDir()
	metrics := filepath.Join(data, "metrics.json")
	exit := make(chan int, 1)
	go func() {
		exit <- realMain([]string{"-addr", "127.0.0.1:0", "-data", data, "-workers", "2", "-metrics", metrics})
	}()

	// The daemon publishes its bound address once the listener is live.
	addrFile := filepath.Join(data, "wheelsd-addr.txt")
	var addr string
	for deadline := time.Now().Add(10 * time.Second); ; {
		if raw, err := os.ReadFile(addrFile); err == nil && len(bytes.TrimSpace(raw)) > 0 {
			addr = string(bytes.TrimSpace(raw))
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("wheelsd-addr.txt never appeared; daemon did not start")
		}
		time.Sleep(10 * time.Millisecond)
	}

	spec := `{"kind":"campaign","config":{"seed":7,"limit_km":6,"skip_apps":true,"skip_static":true,"skip_passive":true}}`
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("submit decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || st.ID == "" {
		t.Fatalf("submit: status %d, id %q", resp.StatusCode, st.ID)
	}

	// Park an idle keep-alive connection: one completed request, then
	// nothing. The drain must close it, not wait for it.
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("idle dial: %v", err)
	}
	defer idle.Close()
	fmt.Fprintf(idle, "GET /v1/jobs HTTP/1.1\r\nHost: %s\r\n\r\n", addr)
	if _, err := idle.Read(make([]byte, 4096)); err != nil {
		t.Fatalf("idle conn first response: %v", err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("realMain exited %d after SIGTERM, want 0", code)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("daemon did not drain within 2 minutes of SIGTERM")
	}

	// The accepted job's artifacts must exist: drain ran it to completion.
	for _, name := range []string{"dataset.json", "report.txt", "manifest.json"} {
		if _, err := os.Stat(filepath.Join(data, "jobs", st.ID, name)); err != nil {
			t.Errorf("after drain: %v", err)
		}
	}
	if _, err := os.Stat(metrics); err != nil {
		t.Errorf("obs manifest not written: %v", err)
	}

	// And the parked connection is dead, not leaked.
	_ = idle.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := idle.Read(make([]byte, 1)); err == nil {
		t.Error("idle connection still delivering data after drain")
	}
}
